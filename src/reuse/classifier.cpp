#include "reuse/classifier.hpp"

#include "util/logging.hpp"

namespace gmt::reuse
{

RrdClassifier::RrdClassifier(std::uint64_t tier1_pages,
                             std::uint64_t tier2_pages)
    : t1(tier1_pages), t2(tier2_pages)
{
    GMT_ASSERT(tier1_pages > 0);
}

ReuseClass
RrdClassifier::classify(double rrd) const
{
    if (rrd < double(t1))
        return ReuseClass::Short;
    if (rrd < double(t1 + t2))
        return ReuseClass::Medium;
    return ReuseClass::Long;
}

} // namespace gmt::reuse
