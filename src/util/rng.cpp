#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace gmt
{

ZipfSampler::ZipfSampler(std::uint64_t n, double skew)
    : skew_(skew)
{
    GMT_ASSERT(n > 0);
    cdf.resize(n);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
        cdf[i] = acc;
    }
    const double total = acc;
    for (auto &v : cdf)
        v /= total;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        --it;
    return static_cast<std::uint64_t>(it - cdf.begin());
}

} // namespace gmt
