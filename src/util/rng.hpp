/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic component in GMT (GMT-Random placement, workload access
 * generators, the Zipf microbenchmark of Figure 6b) draws from an explicit,
 * seeded Rng instance so that runs are exactly reproducible. We use
 * xorshift64* — tiny state, good quality for simulation purposes, and far
 * cheaper than std::mt19937 on the access hot path.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.hpp"

namespace gmt
{

/** xorshift64*-based deterministic RNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        GMT_ASSERT(bound > 0);
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Re-seed in place. */
    void
    reseed(std::uint64_t seed)
    {
        state = seed ? seed : 0x9e3779b97f4a7c15ull;
    }

  private:
    std::uint64_t state;
};

/**
 * Zipf-distributed sampler over [0, n).
 *
 * Used by the Figure 6b microbenchmark: GPU threads draw page addresses
 * from a Zipf distribution whose skew is swept from 0 (uniform) to 1
 * (highly skewed). Sampling inverts the CDF with binary search over a
 * precomputed table, so draws are O(log n) and deterministic.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     population size (number of distinct pages)
     * @param skew  Zipf exponent; 0 degenerates to uniform
     */
    ZipfSampler(std::uint64_t n, double skew);

    /** Draw one rank in [0, n); rank 0 is the most popular element. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t population() const { return cdf.size(); }
    double skewness() const { return skew_; }

  private:
    std::vector<double> cdf;
    double skew_;
};

} // namespace gmt
