/**
 * @file
 * Status / error reporting in the gem5 spirit.
 *
 * panic()  - an internal invariant was violated; this is a GMT bug.
 *            Aborts so a debugger/core dump can catch it.
 * fatal()  - the user asked for something impossible (bad configuration);
 *            exits with status 1.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 *
 * All functions take printf-style formatting. GMT_ASSERT is a hot-path
 * checked assertion that routes through panic() with file/line context.
 */

#pragma once

#include <cstdarg>

namespace gmt
{

/** Abort with a message: internal invariant violated (a GMT bug). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: unusable user configuration, not a bug. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message on stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it for clean tables). */
void setInformEnabled(bool enabled);

/**
 * Best-effort hook invoked (at most once, recursion-guarded) before
 * panic() aborts or fatal() exits, after the message is printed. The
 * flight recorder installs one so assertion reports carry the last-N
 * engine events instead of just the message. The hook must tolerate
 * being called from any thread and from arbitrarily broken state.
 */
void setFailureHook(void (*hook)());

namespace detail
{
[[noreturn]] void assertFail(const char *expr, const char *file, int line);
} // namespace detail

} // namespace gmt

/** Always-on assertion; violations are GMT bugs, so they panic. */
#define GMT_ASSERT(expr)                                                   \
    do {                                                                   \
        if (!(expr)) [[unlikely]] {                                        \
            ::gmt::detail::assertFail(#expr, __FILE__, __LINE__);          \
        }                                                                  \
    } while (false)
