/**
 * @file
 * Fundamental types shared by every GMT module.
 *
 * All quantities of simulated time are nanoseconds (SimTime). All page
 * identities are indices into a flat, page-granular virtual address space
 * (PageId). These are plain integer aliases rather than strong types so
 * that hot-path arithmetic (the simulator executes tens of millions of
 * page accesses per run) stays branch- and wrapper-free; the naming
 * convention keeps call sites readable.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace gmt
{

/** Simulated time in nanoseconds. */
using SimTime = std::uint64_t;

/** Index of a 64 KiB page in the application's virtual address space. */
using PageId = std::uint64_t;

/** Index of a physical frame inside one tier's frame pool. */
using FrameId = std::uint32_t;

/** Index of a warp in the simulated GPU. */
using WarpId = std::uint32_t;

/** Monotone count of coalesced accesses: the virtual timestamp of §2.1.3. */
using VirtualStamp = std::uint64_t;

/** Sentinel for "no page". */
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/** Sentinel for "no frame". */
inline constexpr FrameId kInvalidFrame = std::numeric_limits<FrameId>::max();

/** Sentinel for "never / unknown time". */
inline constexpr SimTime kNeverTime = std::numeric_limits<SimTime>::max();

/** Placement / movement granularity (§2 item 1): 64 KiB, the UVM default. */
inline constexpr std::size_t kPageBytes = 64 * 1024;

/** Lanes per warp on the modelled GPU. */
inline constexpr unsigned kWarpLanes = 32;

/** Convenience byte-size literals. */
inline constexpr std::uint64_t
operator""_KiB(unsigned long long v)
{
    return v << 10;
}

inline constexpr std::uint64_t
operator""_MiB(unsigned long long v)
{
    return v << 20;
}

inline constexpr std::uint64_t
operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Number of whole pages needed to hold @p bytes. */
inline constexpr std::uint64_t
pagesForBytes(std::uint64_t bytes)
{
    return (bytes + kPageBytes - 1) / kPageBytes;
}

/** The three tiers of the GMT hierarchy (Figure 1). */
enum class Tier : std::uint8_t
{
    GpuMem = 0,   ///< Tier-1: GPU device memory.
    HostMem = 1,  ///< Tier-2: host (CPU) pinned memory.
    Ssd = 2,      ///< Tier-3: NVMe storage.
};

/** Number of tiers (for array sizing). */
inline constexpr unsigned kNumTiers = 3;

/** Human-readable tier name. */
inline constexpr const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::GpuMem: return "Tier-1(GPU)";
      case Tier::HostMem: return "Tier-2(Host)";
      case Tier::Ssd: return "Tier-3(SSD)";
    }
    return "Tier-?";
}

} // namespace gmt
