/**
 * @file
 * One registry for every GMT_* environment knob.
 *
 * Before PR 10 each subsystem hand-rolled its own std::getenv parse with
 * its own junk-handling policy (GMT_JOBS silently swallowed garbage,
 * GMT_SHARDS was fatal, the switches accepted on/off, ...). All knobs
 * now parse through the helpers below — uniform fatal-on-junk — and
 * self-describe through envKnobs()/printEnvHelp() so `--help-env` on any
 * bench or tool lists the whole surface without reading source.
 *
 * The helpers read the process environment each call; knobs are cheap
 * and resolved once per run (or once per process), never on a hot path.
 */

#pragma once

#include <cstdint>
#include <cstdio>

namespace gmt::util
{

/** Raw value of an env knob, or nullptr when unset *or empty*. */
const char *envRaw(const char *name);

/**
 * Boolean switch: '1'/'on' -> true, '0'/'off' -> false, unset/empty ->
 * fallback, anything else -> fatal().
 */
bool envSwitch(const char *name, bool fallback);

/**
 * Unsigned integer knob clamped to [min, max]: unset/empty -> fallback
 * (returned unchecked so "0 = auto" sentinels stay expressible),
 * non-numeric / trailing junk / out-of-range -> fatal().
 */
std::uint64_t envU64(const char *name, std::uint64_t fallback,
                     std::uint64_t min, std::uint64_t max);

/** One row of the knob registry (static storage, never freed). */
struct EnvKnob
{
    const char *name;    ///< e.g. "GMT_SCHED"
    const char *values;  ///< accepted values, human-readable
    const char *fallback;///< default when unset
    const char *what;    ///< one-line description
};

/** Every registered GMT_* knob, in presentation order. */
const EnvKnob *envKnobs(std::size_t *count);

/** Render the registry as a `--help-env` listing. */
void printEnvHelp(std::FILE *out);

} // namespace gmt::util
