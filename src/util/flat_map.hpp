/**
 * @file
 * FlatMap: a deterministic open-addressing hash map for integer keys.
 *
 * The simulator's per-access hot path (Tier-1 in-flight window, the
 * per-page arrival times, the Olken tree's last-stamp index) is keyed
 * by dense-ish integer ids and does nothing but find/insert/erase.
 * std::unordered_map pays a heap allocation per node plus a pointer
 * chase per probe there; this map stores slots inline in one flat
 * power-of-two array with linear probing, so a lookup is one multiply
 * (the hash finalizer) plus a short contiguous scan.
 *
 * Design constraints, in order:
 *  - Determinism. The hash is fixed Fibonacci multiplicative hashing
 *    (one multiply, top bits select the slot), the probe sequence is
 *    linear, growth doubles at a fixed load factor: identical operation
 *    sequences produce identical tables on every platform. There is no
 *    per-process salt.
 *  - Tombstone-free erase. Deletion backward-shifts the following
 *    cluster (Knuth 6.4 algorithm R) instead of leaving tombstones, so
 *    long-running churn (the arrivals map erases lazily on every
 *    expired hit) never degrades probe lengths.
 *  - No iteration-order contract. Iteration visits slots in table
 *    order, which depends on the insertion history. Simulation logic
 *    must not branch on it (DESIGN.md §"Performance engineering");
 *    it exists for tests and bulk export only.
 *
 * Values must be movable; keys must be trivially copyable integers
 * (PageId, FrameId, ...). Find returns a pointer that stays valid until
 * the next insert or erase.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace gmt::util
{

/** Open-addressing (linear probe, backward-shift erase) integer map. */
template <typename Key, typename Value>
class FlatMap
{
    static_assert(std::is_integral_v<Key>,
                  "FlatMap keys must be plain integers");

  public:
    FlatMap() = default;

    /** Pre-size for @p expected entries (no rehash until exceeded). */
    explicit FlatMap(std::size_t expected) { reserve(expected); }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Current slot-array size (0 until first insert/reserve). */
    std::size_t capacity() const { return slots.size(); }

    /** Drop all entries, keeping the slot array. */
    void
    clear()
    {
        for (Slot &s : slots)
            s.used = false;
        count = 0;
    }

    /** Ensure @p expected entries fit without growth. */
    void
    reserve(std::size_t expected)
    {
        const std::size_t needed = tableSizeFor(expected);
        if (needed > slots.size())
            rehash(needed);
    }

    /** Pointer to @p key's value, or nullptr. Never allocates. */
    Value *
    find(Key key)
    {
        if (count == 0)
            return nullptr;
        std::size_t i = indexOf(key);
        while (slots[i].used) {
            if (slots[i].key == key)
                return &slots[i].value;
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    const Value *
    find(Key key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(Key key) const { return find(key) != nullptr; }

    /**
     * Insert (key, value) if absent.
     * @return {pointer to the (existing or new) value, inserted?}
     */
    std::pair<Value *, bool>
    emplace(Key key, Value value)
    {
        growIfNeeded();
        std::size_t i = indexOf(key);
        while (slots[i].used) {
            if (slots[i].key == key)
                return {&slots[i].value, false};
            i = (i + 1) & mask;
        }
        slots[i].used = true;
        slots[i].key = key;
        slots[i].value = std::move(value);
        ++count;
        return {&slots[i].value, true};
    }

    /** Insert or overwrite; returns the stored value. */
    Value &
    insertOrAssign(Key key, Value value)
    {
        growIfNeeded();
        std::size_t i = indexOf(key);
        while (slots[i].used) {
            if (slots[i].key == key) {
                slots[i].value = std::move(value);
                return slots[i].value;
            }
            i = (i + 1) & mask;
        }
        slots[i].used = true;
        slots[i].key = key;
        slots[i].value = std::move(value);
        ++count;
        return slots[i].value;
    }

    /** Value for @p key, default-constructing if absent. */
    Value &
    operator[](Key key)
    {
        return *emplace(key, Value{}).first;
    }

    /**
     * Erase @p key. Backward-shifts the trailing probe cluster so no
     * tombstones accumulate.
     * @return entries removed (0 or 1).
     */
    std::size_t
    erase(Key key)
    {
        if (count == 0)
            return 0;
        std::size_t i = indexOf(key);
        while (slots[i].used) {
            if (slots[i].key == key) {
                shiftBackFrom(i);
                --count;
                return 1;
            }
            i = (i + 1) & mask;
        }
        return 0;
    }

    /** Visit every (key, value) in unspecified (table) order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots)
            if (s.used)
                fn(s.key, s.value);
    }

  private:
    struct Slot
    {
        Key key{};
        Value value{};
        bool used = false;
    };

    /**
     * Fibonacci multiplicative hashing: one multiply by 2^64 / phi,
     * slot taken from the top bits (they mix the whole key, unlike the
     * low bits). Deterministic, no salt; sequential and strided integer
     * keys — the simulator's page ids — spread near-uniformly.
     */
    std::size_t
    indexOf(Key key) const
    {
        return std::size_t(
            (std::uint64_t(key) * 0x9e3779b97f4a7c15ull) >> shift);
    }

    /** Smallest power-of-two table keeping load factor <= 7/8. */
    static std::size_t
    tableSizeFor(std::size_t entries)
    {
        std::size_t n = kMinCapacity;
        while (entries * 8 > n * 7)
            n <<= 1;
        return n;
    }

    void
    growIfNeeded()
    {
        if (slots.empty())
            rehash(kMinCapacity);
        else if ((count + 1) * 8 > slots.size() * 7)
            rehash(slots.size() * 2);
    }

    void
    rehash(std::size_t new_size)
    {
        GMT_ASSERT((new_size & (new_size - 1)) == 0);
        std::vector<Slot> old = std::move(slots);
        slots.assign(new_size, Slot{});
        mask = new_size - 1;
        shift = 64;
        for (std::size_t n = new_size; n > 1; n >>= 1)
            --shift;
        for (Slot &s : old) {
            if (!s.used)
                continue;
            std::size_t i = indexOf(s.key);
            while (slots[i].used)
                i = (i + 1) & mask;
            slots[i].used = true;
            slots[i].key = s.key;
            slots[i].value = std::move(s.value);
        }
    }

    /**
     * Knuth 6.4 algorithm R: having removed the entry at @p hole, pull
     * back every following cluster member whose probe path crosses the
     * hole, then clear the final vacated slot.
     */
    void
    shiftBackFrom(std::size_t hole)
    {
        std::size_t i = hole;
        for (;;) {
            i = (i + 1) & mask;
            if (!slots[i].used)
                break;
            const std::size_t home = indexOf(slots[i].key);
            // slots[i] may move into the hole iff its home position is
            // cyclically outside (hole, i] — i.e. probing from home
            // would have visited the hole before reaching i.
            if (((i - home) & mask) >= ((i - hole) & mask)) {
                slots[hole].key = slots[i].key;
                slots[hole].value = std::move(slots[i].value);
                slots[hole].used = true;
                hole = i;
            }
        }
        slots[hole].used = false;
    }

    static constexpr std::size_t kMinCapacity = 16;

    std::vector<Slot> slots;
    std::size_t count = 0;
    std::size_t mask = 0;
    unsigned shift = 63; ///< 64 - log2(capacity); 63 until first rehash
};

} // namespace gmt::util
