#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace gmt
{

namespace
{

bool informEnabled = true;
void (*failureHook)() = nullptr;

void
runFailureHook()
{
    // One shot: a hook that itself panics must not recurse forever.
    static bool ran = false;
    if (ran || !failureHook)
        return;
    ran = true;
    failureHook();
}

void
vreport(std::FILE *stream, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, ap);
    std::fprintf(stream, "\n");
    std::fflush(stream);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    runFailureHook();
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    runFailureHook();
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

void
setFailureHook(void (*hook)())
{
    failureHook = hook;
}

namespace detail
{

void
assertFail(const char *expr, const char *file, int line)
{
    panic("assertion failed: %s at %s:%d", expr, file, line);
}

} // namespace detail

} // namespace gmt
