#include "util/env.hpp"

#include "util/logging.hpp"

#include <cstdlib>
#include <cstring>

namespace gmt::util
{

const char *
envRaw(const char *name)
{
    const char *env = std::getenv(name);
    return (env && *env) ? env : nullptr;
}

bool
envSwitch(const char *name, bool fallback)
{
    const char *env = envRaw(name);
    if (!env)
        return fallback;
    if (!std::strcmp(env, "1") || !std::strcmp(env, "on"))
        return true;
    if (!std::strcmp(env, "0") || !std::strcmp(env, "off"))
        return false;
    fatal("invalid %s '%s' (expected '0'/'off' or '1'/'on')", name, env);
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback, std::uint64_t min,
       std::uint64_t max)
{
    const char *env = envRaw(name);
    if (!env)
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v < min || v > max)
        fatal("invalid %s '%s' (expected an integer in [%llu, %llu])", name,
              env, static_cast<unsigned long long>(min),
              static_cast<unsigned long long>(max));
    return std::uint64_t(v);
}

namespace
{

const EnvKnob kKnobs[] = {
    {"GMT_SCHED", "heap | wheel", "wheel",
     "event-queue backend (byte-identical results either way)"},
    {"GMT_FASTFWD", "0/off | 1/on", "1",
     "closed-form epoch fast-forward for steady-state phases"},
    {"GMT_BULKFWD", "0/off | 1/on", "1",
     "closed-form bulk-transfer batch completion schedules"},
    {"GMT_SHARDS", "1..1024", "1",
     "conservative-parallel DES shard count (1 = single-queue oracle)"},
    {"GMT_SHARD_SPIN", "0..2^64-1", "4096 on multicore, else 0",
     "dry pump rounds a shard actor spins before parking on its cv"},
    {"GMT_SHARD_KICK", "0..2^64-1", "64 on multicore, else 0",
     "producer enqueues between cross-thread wakeup kicks"},
    {"GMT_SHARD_TIMELINE", "0 | 1", "0",
     "register shard.* contention probes with the timeline sampler"},
    {"GMT_JOBS", "0..4096", "0 (auto: hardware threads)",
     "experiment-matrix worker threads when --jobs is absent"},
};

} // namespace

const EnvKnob *
envKnobs(std::size_t *count)
{
    *count = sizeof(kKnobs) / sizeof(kKnobs[0]);
    return kKnobs;
}

void
printEnvHelp(std::FILE *out)
{
    std::size_t n = 0;
    const EnvKnob *knobs = envKnobs(&n);
    std::fprintf(out, "Environment knobs (all parse fatal-on-junk):\n");
    for (std::size_t i = 0; i < n; ++i) {
        const EnvKnob &k = knobs[i];
        std::fprintf(out, "  %-19s %s\n", k.name, k.what);
        std::fprintf(out, "  %-19s   values: %s   default: %s\n", "",
                     k.values, k.fallback);
    }
}

} // namespace gmt::util
