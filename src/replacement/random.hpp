/**
 * @file
 * Random replacement — a cheap ablation baseline.
 */

#pragma once

#include <cstdint>

#include "replacement/policy.hpp"
#include "util/rng.hpp"

namespace gmt::replacement
{

/** Uniformly random victim among occupied, unpinned frames. */
class RandomPolicy : public Policy
{
  public:
    RandomPolicy(std::uint64_t num_frames, std::uint64_t seed);

    void onInsert(FrameId) override {}
    void onAccess(FrameId) override {}
    void onRemove(FrameId) override {}
    FrameId selectVictim(const mem::FramePool &pool) override;
    const char *name() const override { return "random"; }
    void reset() override;

  private:
    std::uint64_t frames;
    std::uint64_t seed_;
    Rng rng;
};

} // namespace gmt::replacement
