/**
 * @file
 * Exact LRU replacement (intrusive doubly linked list over frame ids).
 *
 * Not used by the paper's configurations (clock approximates it far more
 * cheaply), but needed for the ablation benches that quantify how much of
 * GMT-Reuse's win comes from beating recency-based placement.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "replacement/policy.hpp"

namespace gmt::replacement
{

/** True least-recently-used victim selection. */
class LruPolicy : public Policy
{
  public:
    explicit LruPolicy(std::uint64_t num_frames);

    void onInsert(FrameId f) override;
    void onAccess(FrameId f) override;
    void onRemove(FrameId f) override;
    FrameId selectVictim(const mem::FramePool &pool) override;
    const char *name() const override { return "lru"; }
    void reset() override;

  private:
    void unlink(FrameId f);
    void pushMru(FrameId f);

    struct Node
    {
        FrameId prev = kInvalidFrame;
        FrameId next = kInvalidFrame;
        bool linked = false;
    };

    std::vector<Node> nodes;
    FrameId mru = kInvalidFrame;
    FrameId lru = kInvalidFrame;
};

} // namespace gmt::replacement
