#include "replacement/clock.hpp"
#include "replacement/fifo.hpp"
#include "replacement/lru.hpp"
#include "replacement/policy.hpp"
#include "replacement/random.hpp"
#include "util/logging.hpp"

namespace gmt::replacement
{

std::unique_ptr<Policy>
makeClock(std::uint64_t num_frames)
{
    return std::make_unique<ClockPolicy>(num_frames);
}

std::unique_ptr<Policy>
makeFifo(std::uint64_t num_frames)
{
    return std::make_unique<FifoPolicy>(num_frames);
}

std::unique_ptr<Policy>
makeLru(std::uint64_t num_frames)
{
    return std::make_unique<LruPolicy>(num_frames);
}

std::unique_ptr<Policy>
makeRandom(std::uint64_t num_frames, std::uint64_t seed)
{
    return std::make_unique<RandomPolicy>(num_frames, seed);
}

std::unique_ptr<Policy>
makePolicy(const std::string &name, std::uint64_t num_frames,
           std::uint64_t seed)
{
    if (name == "clock")
        return makeClock(num_frames);
    if (name == "fifo")
        return makeFifo(num_frames);
    if (name == "lru")
        return makeLru(num_frames);
    if (name == "random")
        return makeRandom(num_frames, seed);
    fatal("unknown replacement policy '%s'", name.c_str());
}

} // namespace gmt::replacement
