#include "replacement/random.hpp"

#include "util/logging.hpp"

namespace gmt::replacement
{

RandomPolicy::RandomPolicy(std::uint64_t num_frames, std::uint64_t seed)
    : frames(num_frames), seed_(seed), rng(seed)
{
}

FrameId
RandomPolicy::selectVictim(const mem::FramePool &pool)
{
    GMT_ASSERT(frames == pool.capacity());
    // Rejection-sample a few times, then fall back to a linear scan so
    // selection terminates even when nearly everything is pinned.
    for (int attempt = 0; attempt < 16; ++attempt) {
        const auto f = FrameId(rng.below(frames));
        const mem::Frame &fr = pool.frame(f);
        if (fr.page != kInvalidPage && fr.pins == 0)
            return f;
    }
    const auto start = FrameId(rng.below(frames));
    for (std::uint64_t i = 0; i < frames; ++i) {
        const auto f = FrameId((start + i) % frames);
        const mem::Frame &fr = pool.frame(f);
        if (fr.page != kInvalidPage && fr.pins == 0)
            return f;
    }
    return kInvalidFrame;
}

void
RandomPolicy::reset()
{
    rng.reseed(seed_);
}

} // namespace gmt::replacement
