#include "replacement/clock.hpp"

#include "util/logging.hpp"

namespace gmt::replacement
{

ClockPolicy::ClockPolicy(std::uint64_t num_frames)
    : refBit(num_frames, 0)
{
}

FrameId
ClockPolicy::selectVictim(const mem::FramePool &pool)
{
    const std::uint64_t n = refBit.size();
    GMT_ASSERT(n == pool.capacity());
    // Two full sweeps suffice: the first clears reference bits, the
    // second must find one clear unless everything is pinned.
    for (std::uint64_t scanned = 0; scanned < 2 * n; ++scanned) {
        const auto f = FrameId(handPos);
        handPos = (handPos + 1) % n;
        const mem::Frame &fr = pool.frame(f);
        if (fr.page == kInvalidPage)
            continue;
        if (fr.pins > 0)
            continue;
        if (refBit[f]) {
            refBit[f] = 0;
            continue;
        }
        return f;
    }
    return kInvalidFrame;
}

FrameId
ClockPolicy::selectVictimOwned(const mem::FramePool &pool,
                               const std::vector<std::uint8_t> &owner,
                               std::uint8_t tenant, std::uint64_t &hand)
{
    const std::uint64_t n = refBit.size();
    GMT_ASSERT(n == pool.capacity());
    GMT_ASSERT(owner.size() == n);
    for (std::uint64_t scanned = 0; scanned < 2 * n; ++scanned) {
        const auto f = FrameId(hand);
        hand = (hand + 1) % n;
        if (owner[f] != tenant)
            continue;
        const mem::Frame &fr = pool.frame(f);
        if (fr.page == kInvalidPage)
            continue;
        if (fr.pins > 0)
            continue;
        if (refBit[f]) {
            refBit[f] = 0;
            continue;
        }
        return f;
    }
    return kInvalidFrame;
}

void
ClockPolicy::reset()
{
    refBit.assign(refBit.size(), 0);
    handPos = 0;
}

} // namespace gmt::replacement
