/**
 * @file
 * Replacement-policy interface for frame pools.
 *
 * The paper fixes clock as the Tier-1 victim selector (§2, item 3) and
 * FIFO for Tier-2 (§2.2); GMT-TierOrder additionally runs clock in
 * Tier-2. LRU and Random are provided for ablation benches and tests.
 *
 * A policy ranks *frames*, not pages: the tiering runtime asks "which
 * occupied, unpinned frame should be the next victim", then decides what
 * to do with the page found there (the GMT placement policies of §2.1
 * operate one level above this interface).
 */

#pragma once

#include <memory>
#include <string>

#include "mem/frame_pool.hpp"
#include "util/types.hpp"

namespace gmt::replacement
{

/** Victim-selection policy over one FramePool. */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Frame @p f was inserted (page newly placed). */
    virtual void onInsert(FrameId f) = 0;

    /** Frame @p f was touched by an access (hit). */
    virtual void onAccess(FrameId f) = 0;

    /** Frame @p f was emptied without choosing it as a victim
     *  (e.g. its page was promoted to another tier). */
    virtual void onRemove(FrameId f) = 0;

    /**
     * Choose the next victim frame. Pinned frames must be skipped.
     * @return kInvalidFrame only if every occupied frame is pinned.
     */
    virtual FrameId selectVictim(const mem::FramePool &pool) = 0;

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** Reset to initial state. */
    virtual void reset() = 0;
};

/** Factory helpers. */
std::unique_ptr<Policy> makeClock(std::uint64_t num_frames);
std::unique_ptr<Policy> makeFifo(std::uint64_t num_frames);
std::unique_ptr<Policy> makeLru(std::uint64_t num_frames);
std::unique_ptr<Policy> makeRandom(std::uint64_t num_frames,
                                   std::uint64_t seed);

/** Name-based factory (for config files / CLI flags). */
std::unique_ptr<Policy> makePolicy(const std::string &name,
                                   std::uint64_t num_frames,
                                   std::uint64_t seed = 1);

} // namespace gmt::replacement
