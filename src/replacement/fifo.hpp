/**
 * @file
 * FIFO replacement — the Tier-2 eviction mechanism of §2.2.
 *
 * Victims are chosen in insertion order. Accesses do not reorder the
 * queue (unlike LRU), matching the paper's "simple FIFO mechanism in
 * Tier-2". Pinned frames are rotated to the back rather than skipped
 * destructively so the scan terminates.
 *
 * The queue lives in a fixed power-of-two ring sized at construction:
 * each frame is queued at most once, so the population never exceeds
 * the frame count and the steady push/pop churn of an eviction storm
 * never touches the allocator (a deque would allocate and free a block
 * every time its cursor crossed a block boundary).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "replacement/policy.hpp"

namespace gmt::replacement
{

/** First-in-first-out victim selection. */
class FifoPolicy : public Policy
{
  public:
    explicit FifoPolicy(std::uint64_t num_frames);

    void onInsert(FrameId f) override;
    void onAccess(FrameId f) override {}
    void onRemove(FrameId f) override;
    FrameId selectVictim(const mem::FramePool &pool) override;
    const char *name() const override { return "fifo"; }
    void reset() override;

  private:
    FrameId &
    at(std::size_t i)
    {
        return ring[(head + i) & (ring.size() - 1)];
    }

    void
    pushBack(FrameId f)
    {
        at(count) = f;
        ++count;
    }

    FrameId
    popFront()
    {
        const FrameId f = ring[head];
        head = (head + 1) & (ring.size() - 1);
        --count;
        return f;
    }

    /** Fixed ring holding the queue; capacity >= num_frames, pow2. */
    std::vector<FrameId> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    std::vector<bool> queued;
};

} // namespace gmt::replacement
