/**
 * @file
 * FIFO replacement — the Tier-2 eviction mechanism of §2.2.
 *
 * Victims are chosen in insertion order. Accesses do not reorder the
 * queue (unlike LRU), matching the paper's "simple FIFO mechanism in
 * Tier-2". Pinned frames are rotated to the back rather than skipped
 * destructively so the scan terminates.
 */

#pragma once

#include <cstdint>
#include <deque>

#include "replacement/policy.hpp"

namespace gmt::replacement
{

/** First-in-first-out victim selection. */
class FifoPolicy : public Policy
{
  public:
    explicit FifoPolicy(std::uint64_t num_frames);

    void onInsert(FrameId f) override;
    void onAccess(FrameId f) override {}
    void onRemove(FrameId f) override;
    FrameId selectVictim(const mem::FramePool &pool) override;
    const char *name() const override { return "fifo"; }
    void reset() override;

  private:
    std::deque<FrameId> order;
    std::vector<bool> queued;
};

} // namespace gmt::replacement
