/**
 * @file
 * Clock (second-chance) replacement — the Tier-1 policy of BaM and GMT.
 *
 * Classic circular-hand scan: each frame has a reference bit set on
 * access; the hand clears set bits and evicts the first frame found with
 * a clear bit. Pinned frames are skipped without clearing their bit (an
 * in-flight transfer is not evidence of reuse).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "replacement/policy.hpp"

namespace gmt::replacement
{

/** Clock / second-chance policy. */
class ClockPolicy final : public Policy
{
  public:
    explicit ClockPolicy(std::uint64_t num_frames);

    // The touch hooks are inline (and the class is final) so callers
    // holding a concrete ClockPolicy — Tier-1 fixes clock per the paper
    // — compile a hit's reference-bit set down to one byte store with
    // no virtual dispatch.
    void onInsert(FrameId f) override { refBit[f] = 1; }
    void onAccess(FrameId f) override { refBit[f] = 1; }
    void onRemove(FrameId f) override { refBit[f] = 0; }
    FrameId selectVictim(const mem::FramePool &pool) override;
    const char *name() const override { return "clock"; }
    void reset() override;

    /**
     * Partitioned-clock scan: like selectVictim, but only frames with
     * @p owner[f] == tenant participate — other tenants' frames are
     * passed over without touching their reference bits, so each
     * tenant's clock state evolves as if it had a private cache. The
     * caller owns one @p hand per tenant (this policy's shared hand is
     * untouched).
     * @return frame id, or kInvalidFrame if the tenant has no
     *         evictable (unpinned) frame.
     */
    FrameId selectVictimOwned(const mem::FramePool &pool,
                              const std::vector<std::uint8_t> &owner,
                              std::uint8_t tenant, std::uint64_t &hand);

    /** Current hand position (exposed for tests). */
    std::uint64_t hand() const { return handPos; }

  private:
    // Bytes, not vector<bool>: the hit path writes refBit[f] blind, and
    // a byte store beats the packed bitset's read-modify-write.
    std::vector<std::uint8_t> refBit;
    std::uint64_t handPos = 0;
};

} // namespace gmt::replacement
