/**
 * @file
 * Clock (second-chance) replacement — the Tier-1 policy of BaM and GMT.
 *
 * Classic circular-hand scan: each frame has a reference bit set on
 * access; the hand clears set bits and evicts the first frame found with
 * a clear bit. Pinned frames are skipped without clearing their bit (an
 * in-flight transfer is not evidence of reuse).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "replacement/policy.hpp"

namespace gmt::replacement
{

/** Clock / second-chance policy. */
class ClockPolicy : public Policy
{
  public:
    explicit ClockPolicy(std::uint64_t num_frames);

    void onInsert(FrameId f) override;
    void onAccess(FrameId f) override;
    void onRemove(FrameId f) override;
    FrameId selectVictim(const mem::FramePool &pool) override;
    const char *name() const override { return "clock"; }
    void reset() override;

    /** Current hand position (exposed for tests). */
    std::uint64_t hand() const { return handPos; }

  private:
    std::vector<bool> refBit;
    std::uint64_t handPos = 0;
};

} // namespace gmt::replacement
