#include "replacement/lru.hpp"

#include "util/logging.hpp"

namespace gmt::replacement
{

LruPolicy::LruPolicy(std::uint64_t num_frames)
    : nodes(num_frames)
{
}

void
LruPolicy::unlink(FrameId f)
{
    Node &n = nodes[f];
    GMT_ASSERT(n.linked);
    if (n.prev != kInvalidFrame)
        nodes[n.prev].next = n.next;
    else
        mru = n.next;
    if (n.next != kInvalidFrame)
        nodes[n.next].prev = n.prev;
    else
        lru = n.prev;
    n.prev = n.next = kInvalidFrame;
    n.linked = false;
}

void
LruPolicy::pushMru(FrameId f)
{
    Node &n = nodes[f];
    GMT_ASSERT(!n.linked);
    n.prev = kInvalidFrame;
    n.next = mru;
    if (mru != kInvalidFrame)
        nodes[mru].prev = f;
    mru = f;
    if (lru == kInvalidFrame)
        lru = f;
    n.linked = true;
}

void
LruPolicy::onInsert(FrameId f)
{
    pushMru(f);
}

void
LruPolicy::onAccess(FrameId f)
{
    if (nodes[f].linked)
        unlink(f);
    pushMru(f);
}

void
LruPolicy::onRemove(FrameId f)
{
    if (nodes[f].linked)
        unlink(f);
}

FrameId
LruPolicy::selectVictim(const mem::FramePool &pool)
{
    // Walk from the LRU end, skipping pinned frames.
    for (FrameId f = lru; f != kInvalidFrame; f = nodes[f].prev) {
        const mem::Frame &fr = pool.frame(f);
        if (fr.page == kInvalidPage || fr.pins > 0)
            continue;
        unlink(f);
        return f;
    }
    return kInvalidFrame;
}

void
LruPolicy::reset()
{
    nodes.assign(nodes.size(), Node{});
    mru = lru = kInvalidFrame;
}

} // namespace gmt::replacement
