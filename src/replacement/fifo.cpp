#include "replacement/fifo.hpp"

#include "util/logging.hpp"

namespace gmt::replacement
{

FifoPolicy::FifoPolicy(std::uint64_t num_frames)
    : queued(num_frames, false)
{
}

void
FifoPolicy::onInsert(FrameId f)
{
    GMT_ASSERT(!queued[f]);
    order.push_back(f);
    queued[f] = true;
}

void
FifoPolicy::onRemove(FrameId f)
{
    if (!queued[f])
        return;
    for (auto it = order.begin(); it != order.end(); ++it) {
        if (*it == f) {
            order.erase(it);
            break;
        }
    }
    queued[f] = false;
}

FrameId
FifoPolicy::selectVictim(const mem::FramePool &pool)
{
    // Rotate over pinned/stale entries at most once around the queue.
    for (std::size_t scanned = 0, n = order.size(); scanned < n; ++scanned) {
        const FrameId f = order.front();
        order.pop_front();
        const mem::Frame &fr = pool.frame(f);
        if (fr.page == kInvalidPage) {
            queued[f] = false; // stale entry: page left without notice
            continue;
        }
        if (fr.pins > 0) {
            order.push_back(f); // keep FIFO position roughly: rotate
            continue;
        }
        queued[f] = false;
        return f;
    }
    return kInvalidFrame;
}

void
FifoPolicy::reset()
{
    order.clear();
    queued.assign(queued.size(), false);
}

} // namespace gmt::replacement
