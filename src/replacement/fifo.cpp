#include "replacement/fifo.hpp"

#include "util/logging.hpp"

namespace gmt::replacement
{

FifoPolicy::FifoPolicy(std::uint64_t num_frames)
    : queued(num_frames, false)
{
    std::size_t cap = 2;
    while (cap < num_frames)
        cap <<= 1;
    ring.assign(cap, kInvalidFrame);
}

void
FifoPolicy::onInsert(FrameId f)
{
    GMT_ASSERT(!queued[f]);
    pushBack(f);
    queued[f] = true;
}

void
FifoPolicy::onRemove(FrameId f)
{
    if (!queued[f])
        return;
    for (std::size_t i = 0; i < count; ++i) {
        if (at(i) == f) {
            // Shift the tail left one slot: order is preserved exactly
            // as a deque erase would.
            for (std::size_t j = i; j + 1 < count; ++j)
                at(j) = at(j + 1);
            --count;
            break;
        }
    }
    queued[f] = false;
}

FrameId
FifoPolicy::selectVictim(const mem::FramePool &pool)
{
    // Rotate over pinned/stale entries at most once around the queue.
    for (std::size_t scanned = 0, n = count; scanned < n; ++scanned) {
        const FrameId f = popFront();
        const mem::Frame &fr = pool.frame(f);
        if (fr.page == kInvalidPage) {
            queued[f] = false; // stale entry: page left without notice
            continue;
        }
        if (fr.pins > 0) {
            pushBack(f); // keep FIFO position roughly: rotate
            continue;
        }
        queued[f] = false;
        return f;
    }
    return kInvalidFrame;
}

void
FifoPolicy::reset()
{
    head = 0;
    count = 0;
    queued.assign(queued.size(), false);
}

} // namespace gmt::replacement
