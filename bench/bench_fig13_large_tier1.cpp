/**
 * @file
 * Figure 13 — larger Tier-1 (32 GB) with datasets rescaled for OSF 2,
 * non-graph applications only (§3.5). Paper: GMT-Reuse keeps a 45%
 * speedup, beating GMT-Random and GMT-TierOrder by 20% and 35%.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 13 (Tier-1 = 32 GB, Tier-2 = 128 GB, "
                        "OSF 2, non-graph apps)");

    RuntimeConfig cfg = defaultConfig(opt);
    cfg.tier1Pages *= 2;
    cfg.tier2Pages *= 2;
    cfg.setOversubscription(2.0);

    stats::Table t("Figure 13: speedup over BaM (non-graph apps)");
    t.header({"App", "GMT-TierOrder", "GMT-Random", "GMT-Reuse"});
    std::vector<RunSpec> specs;
    std::vector<std::string> apps;
    for (const auto &info : workloads::allWorkloads()) {
        if (info.graphApp)
            continue;
        apps.push_back(info.name);
        for (System sys : {System::Bam, System::GmtTierOrder,
                           System::GmtRandom, System::GmtReuse})
            specs.push_back({sys, info.name, cfg, 64});
    }
    const auto results = runAll(specs, opt);

    std::vector<double> sp_order, sp_random, sp_reuse;
    std::size_t idx = 0;
    for (const auto &app : apps) {
        const auto &bam = results[idx++];
        const auto &order = results[idx++];
        const auto &random = results[idx++];
        const auto &reuse = results[idx++];
        sp_order.push_back(order.speedupOver(bam));
        sp_random.push_back(random.speedupOver(bam));
        sp_reuse.push_back(reuse.speedupOver(bam));
        t.row({app, stats::Table::num(sp_order.back()),
               stats::Table::num(sp_random.back()),
               stats::Table::num(sp_reuse.back())});
    }
    t.row({"geo-mean", stats::Table::num(meanSpeedup(sp_order)),
           stats::Table::num(meanSpeedup(sp_random)),
           stats::Table::num(meanSpeedup(sp_reuse))});
    emit(t, opt);
    std::printf("Paper: GMT-Reuse ~1.45 over BaM, beating GMT-Random and "
                "GMT-TierOrder by 20%% and 35%%.\n");
    return 0;
}
