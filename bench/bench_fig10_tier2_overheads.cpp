/**
 * @file
 * Figure 10 — the costs of having a Tier-2 (§3.4).
 *
 * 10a: wasteful Tier-2 lookups (probe missed) as a percentage of
 *      Tier-1 misses: GMT-Reuse fewest, GMT-TierOrder worst.
 * 10b: pages placed into Tier-2 and pages fetched from Tier-2, each as
 *      a percentage of BaM's GPU<->SSD transfers; matched halves mean
 *      placements are actually being reused.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 10 (Tier-2 overheads)");
    const RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t10a("Figure 10a: wasteful Tier-2 lookups "
                      "(% of Tier-1 misses)");
    t10a.header({"App", "GMT-TierOrder", "GMT-Random", "GMT-Reuse"});
    stats::Table t10b("Figure 10b: Tier-1->Tier-2 placements and "
                      "Tier-2->Tier-1 fetches (% of BaM SSD transfers)");
    t10b.header({"App", "TierOrder place/fetch", "Random place/fetch",
                 "Reuse place/fetch"});

    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads())
        for (System sys : {System::Bam, System::GmtTierOrder,
                           System::GmtRandom, System::GmtReuse})
            specs.push_back({sys, info.name, cfg, 64});
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        const double bam_io = double(bam.ssdReads + bam.ssdWrites);

        std::vector<std::string> rowa = {info.name};
        std::vector<std::string> rowb = {info.name};
        for (int s = 0; s < 3; ++s) {
            const auto &r = results[idx++];
            rowa.push_back(stats::Table::pct(
                r.tier1Misses
                    ? double(r.wastefulLookups) / double(r.tier1Misses)
                    : 0.0));
            rowb.push_back(
                stats::Table::pct(double(r.evictToTier2) / bam_io) + " / "
                + stats::Table::pct(double(r.tier2Fetches) / bam_io));
        }
        t10a.row(rowa);
        t10b.row(rowb);
    }
    emit(t10a, opt);
    emit(t10b, opt);
    std::printf("Paper: GMT-Reuse has the fewest unnecessary lookups; "
                "GMT-TierOrder is worst. In 10b the two halves should "
                "match most closely for GMT-Reuse.\n");
    return 0;
}
