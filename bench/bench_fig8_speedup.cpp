/**
 * @file
 * Figure 8 — the headline result.
 *
 * 8a: speedup of GMT-{TierOrder, Random, Reuse} over BaM for all nine
 *     Table 2 applications (paper averages: 1.07 / 1.24 / 1.50).
 * 8b: SSD I/O of each policy relative to BaM (the Tier-2 hit-rate
 *     mechanism behind the speedups).
 *
 * Configuration matches §3.1: Tier-1 = 16 GB, Tier-2 = 64 GB (both at
 * 1:1024 scale), oversubscription factor 2.
 */

#include <map>

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 8 (speedup over BaM, Tier-1=16GB, "
                        "Tier-2=64GB, OSF=2)");
    const RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t8a("Figure 8a: Speedup over BaM");
    t8a.header({"App", "GMT-TierOrder", "GMT-Random", "GMT-Reuse",
                "Paper(GMT-Reuse approx)"});
    stats::Table t8b("Figure 8b: SSD I/O relative to BaM (reads+writes)");
    t8b.header({"App", "BaM(GB)", "TierOrder", "Random", "Reuse"});

    // Per-app GMT-Reuse speedups read off the paper's Figure 8a bars.
    const std::map<std::string, double> paper_reuse = {
        {"lavaMD", 0.88},    {"Pathfinder", 1.25},
        {"BFS", 1.28},       {"MultiVectorAdd", 1.40},
        {"Srad", 2.33},      {"Backprop", 2.79},
        {"PageRank", 1.18},  {"SSSP", 1.13},
        {"Hotspot", 2.25},
    };

    // One matrix cell per (app, system); executed across --jobs workers.
    const std::vector<System> systems = {System::Bam, System::GmtTierOrder,
                                         System::GmtRandom,
                                         System::GmtReuse};
    std::vector<RunSpec> specs;
    for (const auto &app : appNames())
        for (System sys : systems)
            specs.push_back({sys, app, cfg, 64});
    const auto results = runAll(specs, opt);

    std::vector<double> sp_order, sp_random, sp_reuse;
    std::size_t idx = 0;
    for (const auto &app : appNames()) {
        const auto &bam = results[idx++];
        const auto &order = results[idx++];
        const auto &random = results[idx++];
        const auto &reuse = results[idx++];

        sp_order.push_back(order.speedupOver(bam));
        sp_random.push_back(random.speedupOver(bam));
        sp_reuse.push_back(reuse.speedupOver(bam));

        t8a.row({app, stats::Table::num(sp_order.back()),
                 stats::Table::num(sp_random.back()),
                 stats::Table::num(sp_reuse.back()),
                 stats::Table::num(paper_reuse.at(app))});

        const double bam_gb = double(bam.ssdBytes()) / double(1_GiB)
                              * double(kCapacityScale);
        auto rel = [&](const ExperimentResult &r) {
            return stats::Table::pct(double(r.ssdBytes())
                                     / double(bam.ssdBytes()));
        };
        t8b.row({app, stats::Table::num(bam_gb, 1), rel(order),
                 rel(random), rel(reuse)});
    }
    t8a.row({"geo-mean", stats::Table::num(meanSpeedup(sp_order)),
             stats::Table::num(meanSpeedup(sp_random)),
             stats::Table::num(meanSpeedup(sp_reuse)),
             "1.50 (avg; 1.07/1.24 for TierOrder/Random)"});

    emit(t8a, opt);
    emit(t8b, opt);
    return 0;
}
