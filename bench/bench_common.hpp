/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Every bench binary regenerates one of the paper's tables/figures:
 * it prints the Table 1 platform banner, builds the §3.1 default
 * configuration (optionally shrunk by --quick for CI), runs the systems
 * it needs, and prints rows in the same shape the paper reports —
 * annotated with the paper's published value where the text states one.
 */

#pragma once

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/run_matrix.hpp"
#include "harness/trace_analysis.hpp"
#include "stats/table.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace gmt::bench
{

/** Command-line switches shared by all benches. */
struct BenchOptions
{
    bool quick = false; ///< quarter-scale runs for CI
    bool csv = false;   ///< machine-readable output
    unsigned jobs = 0;  ///< simulation worker threads; 0 = auto
                        ///< (GMT_JOBS env, else hardware concurrency)

    /** Chrome trace_event JSON output (".jsonl" for line records);
     *  empty = tracing off (zero overhead). */
    std::string traceFile;

    /** Per-cell metrics JSON (latency percentiles, queue depths);
     *  empty = metrics off. */
    std::string metricsFile;

    /** Per-fault span breakdown JSONL; empty = span profiling off. */
    std::string spansFile;

    /** Interval telemetry timeline JSONL; empty = timeline off. */
    std::string timelineFile;

    /** Timeline sampling period in simulated ns; 0 = default. */
    SimTime timelinePeriodNs = 0;

    /** Per-tenant SLO monitor report JSONL; empty = monitors off. */
    std::string sloFile;

    /** Flight-recorder snapshot JSONL; empty = recorder off. */
    std::string flightFile;
};

inline BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            opt.quick = true;
        else if (std::strcmp(argv[i], "--csv") == 0)
            opt.csv = true;
        else if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal("--jobs needs a value");
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v <= 0)
                fatal("--jobs wants a positive integer, got '%s'",
                      argv[i]);
            opt.jobs = unsigned(v);
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc)
                fatal("--trace needs a file path");
            opt.traceFile = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            if (i + 1 >= argc)
                fatal("--metrics needs a file path");
            opt.metricsFile = argv[++i];
        } else if (std::strcmp(argv[i], "--spans") == 0) {
            if (i + 1 >= argc)
                fatal("--spans needs a file path");
            opt.spansFile = argv[++i];
        } else if (std::strcmp(argv[i], "--timeline") == 0) {
            if (i + 1 >= argc)
                fatal("--timeline needs a file path");
            opt.timelineFile = argv[++i];
        } else if (std::strcmp(argv[i], "--timeline-period") == 0) {
            if (i + 1 >= argc)
                fatal("--timeline-period needs a value (simulated ns)");
            const long long v = std::strtoll(argv[++i], nullptr, 10);
            if (v <= 0)
                fatal("--timeline-period wants a positive ns count, "
                      "got '%s'",
                      argv[i]);
            opt.timelinePeriodNs = SimTime(v);
        } else if (std::strcmp(argv[i], "--slo") == 0) {
            if (i + 1 >= argc)
                fatal("--slo needs a file path");
            opt.sloFile = argv[++i];
        } else if (std::strcmp(argv[i], "--flight") == 0) {
            if (i + 1 >= argc)
                fatal("--flight needs a file path");
            opt.flightFile = argv[++i];
        } else if (std::strcmp(argv[i], "--help-env") == 0) {
            util::printEnvHelp(stdout);
            std::exit(0);
        } else
            fatal("unknown bench option '%s' (expected --quick/--csv/"
                  "--jobs N/--trace FILE/--metrics FILE/--spans FILE/"
                  "--timeline FILE/--timeline-period NS/--slo FILE/"
                  "--flight FILE/--help-env)",
                  argv[i]);
    }
    return opt;
}

/**
 * The bench's process-wide tracer: cells from every runAll() call in
 * this binary accumulate into one trace/metrics artifact pair.
 */
inline harness::MatrixTracer &
matrixTracer(const BenchOptions &opt)
{
    static harness::MatrixTracer tracer(harness::MatrixTracer::Options{
        opt.traceFile, opt.metricsFile, opt.spansFile, opt.timelineFile,
        opt.timelinePeriodNs, opt.sloFile, opt.flightFile});
    return tracer;
}

/** Run a spec matrix with the bench's worker-count setting. */
inline std::vector<harness::ExperimentResult>
runAll(const std::vector<harness::RunSpec> &specs, const BenchOptions &opt)
{
    harness::MatrixTracer &tracer = matrixTracer(opt);
    auto results = harness::runMatrix(specs, opt.jobs, &tracer);
    // Rewritten after every matrix so a bench with several sub-sweeps
    // always leaves complete artifacts behind, even if interrupted.
    if (tracer.enabled())
        tracer.writeOutputs();
    return results;
}

/** Deterministic parallel loop with the bench's worker-count setting. */
inline void
forEach(std::size_t count, const BenchOptions &opt,
        const std::function<void(std::size_t)> &body)
{
    harness::parallelFor(count, body, opt.jobs);
}

/** Print the Table 1 platform banner (the simulated system). */
inline void
printPlatformBanner(const char *bench_name)
{
    std::printf("GMT reproduction bench: %s\n", bench_name);
    std::printf("Simulated platform (Table 1, capacities at 1:1024 "
                "scale):\n"
                "  GPU    : A100-class SIMT access engine, 64 KiB pages\n"
                "  SSD    : Samsung 970 EVO Plus class (3.4/3.2 GB/s, "
                "~110 us read media latency)\n"
                "  PCIe   : Gen3 x16 (12 GB/s usable)\n"
                "  Tiers  : T1 = GPU memory, T2 = host pinned memory, "
                "T3 = SSD\n");
}

/** §3.1 default config, optionally shrunk for --quick runs. */
inline RuntimeConfig
defaultConfig(const BenchOptions &opt)
{
    RuntimeConfig cfg = RuntimeConfig::paperDefault();
    if (opt.quick) {
        cfg.tier1Pages /= 4;
        cfg.tier2Pages /= 4;
        cfg.setOversubscription(2.0);
        cfg.sampleTarget /= 4;
    }
    return cfg;
}

/** Render a table as ASCII or CSV per options. */
inline void
emit(const stats::Table &table, const BenchOptions &opt)
{
    if (opt.csv)
        table.printCsv();
    else
        table.print();
}

/** Names of the nine apps in Table 2 order. */
inline std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const auto &info : workloads::allWorkloads())
        names.push_back(info.name);
    return names;
}

} // namespace gmt::bench
