/**
 * @file
 * Figure 4 — the empirical basis of GMT-Reuse's predictor.
 *
 * 4a: VTD vs (unique) reuse distance correlation for MultiVectorAdd and
 *     PageRank. The paper's claim is a strong linear relation; we print
 *     the fitted line and Pearson r.
 * 4b: MultiVectorAdd per-page RRD at successive Tier-1 evictions —
 *     constant per page.
 * 4c: PageRank — alternating per page (the src/dst swap).
 */

#include <algorithm>
#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "reuse/ols_regressor.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

namespace
{

double
pearson(const std::vector<VtdRdPair> &pairs)
{
    if (pairs.size() < 2)
        return 0.0;
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (const auto &p : pairs) {
        const double x = double(p.vtd), y = double(p.rd);
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    const double n = double(pairs.size());
    const double cov = sxy - sx * sy / n;
    const double vx = sxx - sx * sx / n;
    const double vy = syy - sy * sy / n;
    if (vx <= 0 || vy <= 0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 4 (VTD/RRD characteristics)");
    const RuntimeConfig cfg = defaultConfig(opt);

    // Both panels consume the same exact traces; analyze each app once,
    // in parallel.
    const std::vector<const char *> apps = {"MultiVectorAdd", "PageRank"};
    std::vector<TraceAnalysis> analyses(apps.size());
    forEach(apps.size(), opt, [&](std::size_t i) {
        workloads::WorkloadConfig wc;
        wc.pages = cfg.numPages;
        wc.seed = cfg.seed + 13;
        auto stream = workloads::makeWorkload(apps[i], wc);
        analyses[i] = analyzeStream(*stream, cfg.tier1Pages);
    });

    // ---- 4a: VTD <-> RD linearity. ----
    stats::Table t4a("Figure 4a: VTD vs Reuse Distance (linearity)");
    t4a.header({"App", "pairs", "Pearson r", "OLS slope m", "offset b",
                "paper expectation"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const char *app = apps[i];
        const TraceAnalysis &a = analyses[i];
        reuse::OlsRegressor ols;
        for (const auto &p : a.pairs)
            ols.addSample(double(p.vtd), double(p.rd));
        const reuse::LinearModel m = ols.fit();
        const double r = pearson(a.pairs);
        // A workload with one reuse operating point has zero VTD
        // variance: correlation is undefined but the proportional fit
        // through that point is exact.
        const std::string r_cell =
            r == 0.0 ? "n/a (single VTD mode)" : stats::Table::num(r, 3);
        t4a.row({app, std::to_string(a.pairs.size()), r_cell,
                 stats::Table::num(m.m, 4), stats::Table::num(m.b, 1),
                 "good linear correlation"});
    }
    emit(t4a, opt);

    // ---- 4b/4c: per-page RRD across successive evictions. ----
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const char *app = apps[i];
        const TraceAnalysis &a = analyses[i];

        // Collect RRD sequences for pages with the most evictions.
        std::map<PageId, std::vector<std::uint64_t>> seqs;
        for (const auto &e : a.evictions) {
            if (e.reusedAgain)
                seqs[e.page].push_back(e.rrd);
        }
        std::vector<std::pair<PageId, std::vector<std::uint64_t>>> top(
            seqs.begin(), seqs.end());
        std::sort(top.begin(), top.end(),
                  [](const auto &x, const auto &y) {
                      return x.second.size() > y.second.size();
                  });

        stats::Table t(std::string("Figure 4")
                       + (std::string(app) == "MultiVectorAdd" ? "b" : "c")
                       + ": " + app
                       + " - RRD at successive Tier-1 evictions"
                         " (sample pages)");
        t.header({"Page", "ev#1", "ev#2", "ev#3", "ev#4",
                  "pattern (paper)"});
        const char *expect = std::string(app) == "MultiVectorAdd"
            ? "constant per page"
            : "alternating per page";
        for (std::size_t i = 0; i < std::min<std::size_t>(6, top.size());
             ++i) {
            const auto &[page, rrds] = top[i];
            auto cell = [&](std::size_t j) {
                return j < rrds.size() ? std::to_string(rrds[j])
                                       : std::string("-");
            };
            t.row({std::to_string(page), cell(0), cell(1), cell(2),
                   cell(3), expect});
        }
        emit(t, opt);
    }
    return 0;
}
