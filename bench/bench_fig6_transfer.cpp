/**
 * @file
 * Figure 6 — transfer mechanisms between Tiers 1 and 2 (§2.3).
 *
 * 6a: per-batch latency of cudaMemcpyAsync vs warp zero-copy for a
 *     growing count of non-contiguous pages; the crossover must sit at
 *     8 pages as the paper reports.
 * 6b: delivered bandwidth when warps issue Zipf-distributed page
 *     requests (skew 1.0 -> 0.0) for always-DMA, always-zero-copy, and
 *     Hybrid-{8,16,32}T; Hybrid-32T must be (near) best throughout.
 */

#include <deque>
#include <set>

#include "bench_common.hpp"
#include "pcie/params.hpp"
#include "pcie/transfer_manager.hpp"
#include "sim/channel.hpp"
#include "util/rng.hpp"

using namespace gmt;
using namespace gmt::bench;

namespace
{

sim::BandwidthChannel
makeLink()
{
    return sim::BandwidthChannel("pcie", pcie::kLinkBandwidth,
                                 pcie::kLinkLatencyNs);
}

/**
 * 6b harness: warps repeatedly draw a window of Zipf page addresses;
 * pages already resident in GPU memory (a small device-side cache fed
 * by previous transfers) are served locally, and only the *new* pages
 * form the batch handed to the transfer scheme. Higher skew -> more
 * requests fall on resident hot pages -> smaller batches, which is
 * exactly the knob Figure 6b sweeps ("higher skew implies fewer
 * distinct pages"). Delivered bandwidth counts transferred bytes per
 * simulated second.
 */
double
zipfBandwidthGBs(pcie::TransferScheme scheme, double skew,
                 std::uint64_t windows)
{
    auto link = makeLink();
    pcie::TransferManager tm(link, scheme);
    Rng rng(42);
    ZipfSampler zipf(2048, skew);

    // Tiny FIFO residency filter standing in for GPU memory.
    constexpr std::size_t kResident = 1024;
    std::set<std::uint64_t> resident;
    std::deque<std::uint64_t> fifo;

    SimTime now = 0;
    std::uint64_t bytes = 0;
    for (std::uint64_t w = 0; w < windows; ++w) {
        // One warp iteration: 32 lanes each request a page.
        std::set<std::uint64_t> batch;
        for (unsigned lane = 0; lane < kWarpLanes; ++lane) {
            const std::uint64_t page = zipf.sample(rng);
            if (!resident.count(page))
                batch.insert(page);
        }
        if (batch.empty()) {
            now += 1000; // all lanes hit: one compute step
            continue;
        }
        now = tm.transfer(now, unsigned(batch.size()), kWarpLanes);
        bytes += std::uint64_t(batch.size()) * kPageBytes;
        for (const std::uint64_t page : batch) {
            resident.insert(page);
            fifo.push_back(page);
            if (fifo.size() > kResident) {
                resident.erase(fifo.front());
                fifo.pop_front();
            }
        }
    }
    return double(bytes) / (double(now) / 1e9) / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 6 (Tier-1 <-> Tier-2 transfer schemes)");

    // ---- 6a ----
    stats::Table t6a(
        "Figure 6a: batch latency (us) for non-contiguous pages");
    t6a.header({"Pages", "cudaMemcpyAsync", "zero-copy(32T)", "winner",
                "paper"});
    for (unsigned pages : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        auto l1 = makeLink();
        auto l2 = makeLink();
        pcie::DmaEngine dma(l1);
        pcie::ZeroCopyEngine zc(l2);
        const double d = double(dma.transferPages(0, pages)) / 1000.0;
        const double z =
            double(zc.transferPages(0, pages, kWarpLanes)) / 1000.0;
        t6a.row({std::to_string(pages), stats::Table::num(d, 1),
                 stats::Table::num(z, 1), d <= z ? "DMA" : "zero-copy",
                 pages <= 8 ? "DMA" : "zero-copy"});
    }
    emit(t6a, opt);

    // ---- 6b ----
    // Every (skew, scheme) cell owns its link/manager/RNG — the grid of
    // 30 simulations fans out across the worker pool.
    const std::uint64_t windows = opt.quick ? 2000 : 20000;
    stats::Table t6b(
        "Figure 6b: delivered bandwidth (GB/s) for Zipf accesses");
    t6b.header({"Skew", "cudaMemcpyAsync", "zero-copy", "Hybrid-8T",
                "Hybrid-16T", "Hybrid-32T"});
    const std::vector<double> skews = {1.0, 0.8, 0.6, 0.4, 0.2, 0.0};
    const std::vector<pcie::TransferScheme> schemes = {
        pcie::TransferScheme::DmaOnly,
        pcie::TransferScheme::ZeroCopyOnly,
        pcie::TransferScheme::Hybrid8T,
        pcie::TransferScheme::Hybrid16T,
        pcie::TransferScheme::Hybrid32T,
    };
    std::vector<double> bw(skews.size() * schemes.size());
    forEach(bw.size(), opt, [&](std::size_t i) {
        const double skew = skews[i / schemes.size()];
        const auto scheme = schemes[i % schemes.size()];
        bw[i] = zipfBandwidthGBs(scheme, skew, windows);
    });
    for (std::size_t s = 0; s < skews.size(); ++s) {
        std::vector<std::string> row = {stats::Table::num(skews[s], 1)};
        for (std::size_t c = 0; c < schemes.size(); ++c)
            row.push_back(
                stats::Table::num(bw[s * schemes.size() + c], 2));
        t6b.row(row);
    }
    emit(t6b, opt);
    std::printf("Paper: Hybrid-32T does (or is close to) the best across "
                "the skew range.\n");
    return 0;
}
