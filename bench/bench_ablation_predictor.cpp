/**
 * @file
 * Ablation — the Figure 5 Markov predictor vs plain persistence.
 *
 * GMT-Reuse with the 3-state Markov chain vs a degraded predictor that
 * always repeats the last correct tier. Apps whose per-page RRDs
 * alternate (PageRank's src/dst swap, Backprop's fwd/bwd asymmetry)
 * should benefit from the chain; constant-RRD apps should not care.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Ablation: Markov predictor vs persistence");
    RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("GMT-Reuse accuracy and speedup: Markov vs "
                   "last-tier persistence");
    t.header({"App", "Markov acc", "persist acc", "Markov speedup",
              "persist speedup"});
    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads()) {
        specs.push_back({System::Bam, info.name, cfg, 64});
        cfg.markovPredictor = true;
        specs.push_back({System::GmtReuse, info.name, cfg, 64});
        cfg.markovPredictor = false;
        specs.push_back({System::GmtReuse, info.name, cfg, 64});
    }
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        const auto &markov = results[idx++];
        const auto &persist = results[idx++];
        t.row({info.name,
               stats::Table::pct(markov.predictionAccuracy()),
               stats::Table::pct(persist.predictionAccuracy()),
               stats::Table::num(markov.speedupOver(bam)),
               stats::Table::num(persist.speedupOver(bam))});
    }
    emit(t, opt);
    return 0;
}
