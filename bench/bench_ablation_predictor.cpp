/**
 * @file
 * Ablation — the Figure 5 Markov predictor vs plain persistence.
 *
 * GMT-Reuse with the 3-state Markov chain vs a degraded predictor that
 * always repeats the last correct tier. Apps whose per-page RRDs
 * alternate (PageRank's src/dst swap, Backprop's fwd/bwd asymmetry)
 * should benefit from the chain; constant-RRD apps should not care.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Ablation: Markov predictor vs persistence");
    RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("GMT-Reuse accuracy and speedup: Markov vs "
                   "last-tier persistence");
    t.header({"App", "Markov acc", "persist acc", "Markov speedup",
              "persist speedup"});
    for (const auto &info : workloads::allWorkloads()) {
        const auto bam = runSystem(System::Bam, cfg, info.name);
        cfg.markovPredictor = true;
        const auto markov = runSystem(System::GmtReuse, cfg, info.name);
        cfg.markovPredictor = false;
        const auto persist = runSystem(System::GmtReuse, cfg, info.name);
        t.row({info.name,
               stats::Table::pct(markov.predictionAccuracy()),
               stats::Table::pct(persist.predictionAccuracy()),
               stats::Table::num(markov.speedupOver(bam)),
               stats::Table::num(persist.speedupOver(bam))});
    }
    emit(t, opt);
    return 0;
}
