/**
 * @file
 * Ablation — GMT-Reuse vs a Belady-style oracle bound.
 *
 * For every application: the maximum Tier-2 hits an oracle with exact
 * future knowledge could extract from the same Tier-1 eviction stream
 * (k-slot interval scheduling over true reuse intervals), next to what
 * GMT-Reuse's practical predictor actually achieved. This quantifies
 * how much headroom is left on the table by the sampling + Markov
 * approximation of Belady's OPT (§2.1.3).
 */

#include "bench_common.hpp"
#include "harness/oracle.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Oracle comparison (Belady-style Tier-2 bound)");
    const RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("Tier-2 hits: oracle bound vs GMT-Reuse");
    t.header({"App", "reused evictions", "oracle bound (T2 slots)",
              "GMT-Reuse hits", "achieved/bound"});
    const auto &apps = workloads::allWorkloads();
    std::vector<OracleBound> bounds(apps.size());
    std::vector<ExperimentResult> reuses(apps.size());
    forEach(apps.size(), opt, [&](std::size_t i) {
        workloads::WorkloadConfig wc;
        wc.pages = cfg.numPages;
        wc.seed = cfg.seed + 13;
        auto stream = workloads::makeWorkload(apps[i].name, wc);
        const TraceAnalysis a = analyzeStream(*stream, cfg.tier1Pages);
        bounds[i] = oracleTier2Bound(a, cfg.tier2Pages);
        reuses[i] = runSystem(System::GmtReuse, cfg, apps[i].name);
    });

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &info = apps[i];
        const OracleBound &bound = bounds[i];
        const ExperimentResult &reuse = reuses[i];

        const double frac = bound.tier2HitBound
            ? double(reuse.tier2Hits) / double(bound.tier2HitBound)
            : 0.0;
        t.row({info.name, std::to_string(bound.reusedEvictions),
               std::to_string(bound.tier2HitBound),
               std::to_string(reuse.tier2Hits),
               stats::Table::pct(frac)});
    }
    emit(t, opt);
    std::printf("Note: the bound is computed on a single-warp reference "
                "trace; the runtime's warp interleaving shifts miss "
                "counts slightly, so ratios slightly above 100%% are "
                "possible on hit-amplifying schedules.\n");
    return 0;
}
