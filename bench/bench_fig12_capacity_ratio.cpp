/**
 * @file
 * Figure 12 — GMT-Reuse speedup over BaM as the Tier-2:Tier-1 ratio
 * grows: 2 (16/32 GB), 4 (16/64 GB), 8 (16/128 GB). Larger host memory
 * admits a larger medium band, so speedups increase, most for the
 * Tier-2-biased applications.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 12 (Tier-2:Tier-1 capacity ratio)");

    stats::Table t("Figure 12: GMT-Reuse speedup over BaM per "
                   "Tier-2:Tier-1 ratio");
    t.header({"App", "ratio 2", "ratio 4", "ratio 8"});

    std::vector<std::vector<double>> per_ratio(3);
    std::vector<std::vector<std::string>> rows;
    for (const auto &info : workloads::allWorkloads())
        rows.push_back({info.name});

    std::vector<RunSpec> specs;
    for (unsigned ratio : {2u, 4u, 8u}) {
        RuntimeConfig cfg = defaultConfig(opt);
        cfg.tier2Pages = cfg.tier1Pages * ratio;
        cfg.setOversubscription(2.0);
        for (const auto &info : workloads::allWorkloads()) {
            specs.push_back({System::Bam, info.name, cfg, 64});
            specs.push_back({System::GmtReuse, info.name, cfg, 64});
        }
    }
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (unsigned col = 0; col < 3; ++col) {
        std::size_t i = 0;
        for ([[maybe_unused]] const auto &info :
             workloads::allWorkloads()) {
            const auto &bam = results[idx++];
            const auto &reuse = results[idx++];
            const double s = reuse.speedupOver(bam);
            per_ratio[col].push_back(s);
            rows[i++].push_back(stats::Table::num(s));
        }
    }
    for (auto &r : rows)
        t.row(r);
    t.row({"geo-mean", stats::Table::num(meanSpeedup(per_ratio[0])),
           stats::Table::num(meanSpeedup(per_ratio[1])),
           stats::Table::num(meanSpeedup(per_ratio[2]))});
    emit(t, opt);
    std::printf("Paper: speedups increase with the ratio, most for "
                "Tier-2-biased apps.\n");
    return 0;
}
