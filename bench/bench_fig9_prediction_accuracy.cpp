/**
 * @file
 * Figure 9 — GMT-Reuse tier-prediction accuracy per application, for
 * the same runs as Figure 8 (Tier-1 = 16 GB, Tier-2 = 64 GB, OSF 2).
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 9 (GMT-Reuse prediction accuracy)");
    const RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("Figure 9: Prediction accuracy of GMT-Reuse");
    t.header({"App", "validated predictions", "accuracy",
              "paper expectation"});
    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads())
        specs.push_back({System::GmtReuse, info.name, cfg, 64});
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const ExperimentResult &r = results[idx++];
        const char *expect = info.name == "lavaMD"
            ? "low (hardly any history)"
            : "fairly high";
        t.row({info.name, std::to_string(r.predTotal),
               stats::Table::pct(r.predictionAccuracy()), expect});
    }
    emit(t, opt);
    return 0;
}
