/**
 * @file
 * Ablation — §5 future work: asynchronous eviction orchestration.
 *
 * "Asynchronous mechanisms to perform these GPU orchestrations can help
 * reduce the associated costs upon demand misses by performing some of
 * these operations in the background." GMT-Reuse with eviction work on
 * vs off the faulting warp's critical path.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Ablation: asynchronous eviction (§5)");
    RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("GMT-Reuse speedup over BaM: synchronous vs "
                   "asynchronous eviction");
    t.header({"App", "sync eviction", "async eviction", "gain"});
    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads()) {
        specs.push_back({System::Bam, info.name, cfg, 64});
        cfg.asyncEviction = false;
        specs.push_back({System::GmtReuse, info.name, cfg, 64});
        cfg.asyncEviction = true;
        specs.push_back({System::GmtReuse, info.name, cfg, 64});
    }
    const auto results = runAll(specs, opt);

    std::vector<double> sync_s, async_s;
    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        const auto &sync = results[idx++];
        const auto &async = results[idx++];
        sync_s.push_back(sync.speedupOver(bam));
        async_s.push_back(async.speedupOver(bam));
        t.row({info.name, stats::Table::num(sync_s.back()),
               stats::Table::num(async_s.back()),
               stats::Table::num(async_s.back() / sync_s.back())});
    }
    t.row({"geo-mean", stats::Table::num(meanSpeedup(sync_s)),
           stats::Table::num(meanSpeedup(async_s)),
           stats::Table::num(meanSpeedup(async_s)
                             / meanSpeedup(sync_s))});
    emit(t, opt);
    return 0;
}
