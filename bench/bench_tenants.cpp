/**
 * @file
 * Multi-tenant open-loop serving under oversubscription: four
 * contending tenants (zipf point lookups, uniform analytics, a
 * sequential scan, and a hotspot web tier) share one GMT-Reuse
 * runtime while the working set sweeps OSF in {2, 4, 8, 16}.
 *
 * Each OSF runs twice: with the shared Tier-1 clock (a misbehaving
 * scan can evict everyone's hot pages) and with the QoS knobs on
 * (partitioned clock + per-tenant quotas, pinned hot sets, and a
 * per-tenant admission throttle). The table reports per-tenant
 * p50/p95/p99 request latency — the per-tenant tails are the figure,
 * not the aggregate: partitioning trades the aggressive tenants'
 * tails for isolation of the well-behaved ones.
 */

#include "bench_common.hpp"
#include "workloads/tenant_schedule.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

namespace
{

/** The four serving tenants tiling @p num_pages (mixed patterns). */
std::vector<workloads::TenantSpec>
servingTenants(std::uint64_t num_pages, std::uint64_t requests)
{
    using workloads::ArrivalPattern;
    const ArrivalPattern patterns[4] = {
        ArrivalPattern::Zipf, ArrivalPattern::Uniform,
        ArrivalPattern::Scan, ArrivalPattern::Hotspot};
    const char *const names[4] = {"kv", "scan", "etl", "web"};
    std::vector<workloads::TenantSpec> specs(4);
    for (unsigned t = 0; t < 4; ++t) {
        workloads::TenantSpec &s = specs[t];
        s.name = names[t];
        s.pattern = patterns[t];
        s.pages = num_pages / 4;
        s.requests = requests;
        s.periodNs = 50000;
        s.phaseNs = t * 12500;
        s.warps = 8;
        s.touchesPerRequest = 8;
        s.seed = 11 + t;
    }
    // Any remainder pages go to the last tenant so the ranges tile the
    // working set exactly.
    specs[3].pages += num_pages - 4 * (num_pages / 4);
    return specs;
}

/** QoS knobs for the partitioned variant of one cell. */
void
applyQos(RuntimeConfig &cfg,
         const std::vector<workloads::TenantSpec> &specs)
{
    std::uint64_t end = 0;
    for (const auto &s : specs) {
        end += s.pages;
        cfg.tenants.pageBounds.push_back(end);
    }
    cfg.tenants.partitionTier1 = true;
    const std::uint64_t quota = cfg.tier1Pages / 4;
    cfg.tenants.tier1Quota = {quota, quota, quota, quota};
    // Pin the point-lookup tenants' hottest pages (kv's zipf head and
    // web's hotspot eighth); the scanners get nothing to pin.
    cfg.tenants.pinnedPages = {quota / 2, 0, 0, quota / 4};
    cfg.tenants.fetchWindow = 4;
}

/**
 * Per-tenant SLO monitors (pure observers — attached only when the
 * bench runs with --slo/--flight, and never change results). The
 * point-lookup tenants get tight p99 targets, the scanners loose p95
 * ones; at high OSF the shared-clock cells breach the tight targets
 * deterministically, which is what the flight recorder is for.
 */
void
applySlo(RuntimeConfig &cfg)
{
    trace::SloSpec tight;
    tight.quantilePct = 99;
    tight.targetNs = 1'000'000; // 1 ms p99
    tight.windowNs = 1'000'000;
    tight.burnWindows = 8;
    tight.burnThreshold = 4;
    trace::SloSpec loose;
    loose.quantilePct = 95;
    loose.targetNs = 20'000'000; // 20 ms p95
    loose.windowNs = 1'000'000;
    loose.burnWindows = 8;
    loose.burnThreshold = 4;
    cfg.tenants.slo = {tight, loose, loose, tight}; // kv scan etl web
}

std::string
ns(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("multi-tenant serving (per-tenant tail latency)");

    const double osfs[] = {2.0, 4.0, 8.0, 16.0};
    const std::uint64_t requests = opt.quick ? 500 : 2000;

    std::vector<RunSpec> specs;
    for (double osf : osfs) {
        RuntimeConfig base = defaultConfig(opt);
        base.setOversubscription(osf);
        const auto tenants = servingTenants(base.numPages, requests);

        RunSpec shared;
        shared.system = System::GmtReuse;
        shared.cfg = base;
        applySlo(shared.cfg);
        shared.tenants = tenants;
        specs.push_back(std::move(shared));

        RunSpec part;
        part.system = System::GmtReuse;
        part.cfg = base;
        applyQos(part.cfg, tenants);
        applySlo(part.cfg);
        part.tenants = tenants;
        specs.push_back(std::move(part));
    }
    const auto results = runAll(specs, opt);

    stats::Table t("Per-tenant request latency (ns), shared clock vs "
                   "partitioned + pins + throttle");
    t.header({"OSF", "Tenant", "sh p50", "sh p95", "sh p99", "qos p50",
              "qos p95", "qos p99"});
    for (std::size_t i = 0; i < std::size(osfs); ++i) {
        const ExperimentResult &sh = results[2 * i];
        const ExperimentResult &qos = results[2 * i + 1];
        for (std::size_t k = 0; k < sh.tenants.size(); ++k) {
            const TenantResult &a = sh.tenants[k];
            const TenantResult &b = qos.tenants[k];
            t.row({stats::Table::num(osfs[i]), a.tenant, ns(a.p50Ns),
                   ns(a.p95Ns), ns(a.p99Ns), ns(b.p50Ns), ns(b.p95Ns),
                   ns(b.p99Ns)});
        }
    }
    emit(t, opt);

    stats::Table h("Per-tenant service mix (shared clock cells)");
    h.header({"OSF", "Tenant", "Requests", "Accesses", "T1 hit %",
              "T2 hits", "Faults"});
    for (std::size_t i = 0; i < std::size(osfs); ++i) {
        const ExperimentResult &sh = results[2 * i];
        for (const TenantResult &a : sh.tenants) {
            const double hitPct = a.accesses
                ? 100.0 * double(a.tier1Hits) / double(a.accesses)
                : 0.0;
            h.row({stats::Table::num(osfs[i]), a.tenant,
                   std::to_string(a.requests), std::to_string(a.accesses),
                   stats::Table::num(hitPct), std::to_string(a.tier2Hits),
                   std::to_string(a.faults)});
        }
    }
    emit(h, opt);
    std::printf("Open-loop arrivals: queueing delay lands in the tails; "
                "partitioning + pins protect kv/web at the scanners' "
                "expense.\n");
    return 0;
}
