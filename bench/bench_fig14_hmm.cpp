/**
 * @file
 * Figure 14 — the GPU-orchestration argument (§3.6): HMM (host
 * CPU-orchestrated 3-tier) vs GMT-Reuse, both relative to BaM. Paper:
 * BaM beats HMM everywhere despite HMM's Tier-2 leverage; GMT-Reuse is
 * 357% faster than HMM on average.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 14 (HMM vs GMT-Reuse over BaM)");
    const RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("Figure 14: speedup over BaM");
    t.header({"App", "HMM", "GMT-Reuse", "GMT-Reuse vs HMM"});
    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads())
        for (System sys :
             {System::Bam, System::Hmm, System::GmtReuse})
            specs.push_back({sys, info.name, cfg, 64});
    const auto results = runAll(specs, opt);

    std::vector<double> sp_hmm, sp_reuse, reuse_vs_hmm;
    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        const auto &hmm = results[idx++];
        const auto &reuse = results[idx++];
        sp_hmm.push_back(hmm.speedupOver(bam));
        sp_reuse.push_back(reuse.speedupOver(bam));
        reuse_vs_hmm.push_back(reuse.speedupOver(hmm));
        t.row({info.name, stats::Table::num(sp_hmm.back()),
               stats::Table::num(sp_reuse.back()),
               stats::Table::num(reuse_vs_hmm.back())});
    }
    t.row({"geo-mean", stats::Table::num(meanSpeedup(sp_hmm)),
           stats::Table::num(meanSpeedup(sp_reuse)),
           stats::Table::num(meanSpeedup(reuse_vs_hmm))});
    emit(t, opt);
    std::printf("Paper: HMM < 1.0 everywhere; GMT-Reuse is ~4.57x HMM "
                "(357%% faster) on average.\n");
    return 0;
}
