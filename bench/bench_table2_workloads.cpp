/**
 * @file
 * Table 2 — application characteristics.
 *
 * For every app: the measured page-reuse percentage (from an exact
 * instrumented trace) and the total SSD I/O a BaM run performs,
 * reported in paper units (GB at 1:1 scale) next to the published
 * values. Our workloads are synthetic skeletons, so I/O magnitudes
 * differ; reuse percentages and *relative* I/O ordering are the
 * properties the evaluation depends on.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Table 2 (workload characteristics)");
    const RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("Table 2: Applications");
    t.header({"App", "Reuse% (measured)", "Reuse% (paper)",
              "Total I/O GB (measured, BaM)", "Total I/O GB (paper)",
              "Accesses", "RRD bias (paper)"});

    // Each app job does the exact trace analysis AND the reference BaM
    // run; both are per-index isolated, so jobs fan out across workers.
    const auto &apps = workloads::allWorkloads();
    std::vector<TraceAnalysis> analyses(apps.size());
    std::vector<ExperimentResult> bams(apps.size());
    forEach(apps.size(), opt, [&](std::size_t i) {
        workloads::WorkloadConfig wc;
        wc.pages = cfg.numPages;
        wc.seed = cfg.seed + 13;
        auto stream = workloads::makeWorkload(apps[i].name, wc);
        analyses[i] = analyzeStream(*stream, cfg.tier1Pages);
        bams[i] = runSystem(System::Bam, cfg, apps[i].name);
    });

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &info = apps[i];
        const TraceAnalysis &a = analyses[i];
        const ExperimentResult &bam = bams[i];
        const double io_gb = double(bam.ssdBytes()) / double(1_GiB)
                             * double(kCapacityScale);

        t.row({info.name, stats::Table::num(a.reusePct(), 2),
               stats::Table::num(info.paperReusePct, 2),
               stats::Table::num(io_gb, 0),
               stats::Table::num(info.paperTotalIoGb, 0),
               std::to_string(a.accesses), info.rrdBias});
    }
    emit(t, opt);
    return 0;
}
