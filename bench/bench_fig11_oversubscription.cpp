/**
 * @file
 * Figure 11 — sensitivity to the oversubscription factor (§3.5).
 *
 * OSF doubles to 4: non-graph applications double their dataset; graph
 * applications halve the Tier-1/Tier-2 capacities (exactly the paper's
 * method). Expected: speedups shrink (paper: 1.23 / 1.03 / 1.14 for
 * Reuse / TierOrder / Random) but GMT-Reuse stays clearly ahead.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 11 (oversubscription factor 4)");

    stats::Table t("Figure 11: speedup over BaM at OSF = 4");
    t.header({"App", "GMT-TierOrder", "GMT-Random", "GMT-Reuse"});

    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads()) {
        RuntimeConfig cfg = defaultConfig(opt);
        if (info.graphApp) {
            // Graph datasets are fixed: halve both memory tiers.
            cfg.tier1Pages /= 2;
            cfg.tier2Pages /= 2;
            cfg.setOversubscription(4.0);
        } else {
            // Double the dataset.
            cfg.setOversubscription(4.0);
        }
        for (System sys : {System::Bam, System::GmtTierOrder,
                           System::GmtRandom, System::GmtReuse})
            specs.push_back({sys, info.name, cfg, 64});
    }
    const auto results = runAll(specs, opt);

    std::vector<double> sp_order, sp_random, sp_reuse;
    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        const auto &order = results[idx++];
        const auto &random = results[idx++];
        const auto &reuse = results[idx++];
        sp_order.push_back(order.speedupOver(bam));
        sp_random.push_back(random.speedupOver(bam));
        sp_reuse.push_back(reuse.speedupOver(bam));
        t.row({info.name, stats::Table::num(sp_order.back()),
               stats::Table::num(sp_random.back()),
               stats::Table::num(sp_reuse.back())});
    }
    t.row({"geo-mean", stats::Table::num(meanSpeedup(sp_order)),
           stats::Table::num(meanSpeedup(sp_random)),
           stats::Table::num(meanSpeedup(sp_reuse))});
    emit(t, opt);
    std::printf("Paper averages at OSF 4: TierOrder 1.03, Random 1.14, "
                "Reuse 1.23 (all lower than at OSF 2).\n");
    return 0;
}
