/**
 * @file
 * Ablation — transfer scheme inside the full runtime (§2.3).
 *
 * GMT-Reuse with Tier-1<->Tier-2 transfers forced to always-DMA,
 * always-zero-copy, or the paper's Hybrid-32T. Since runtime transfers
 * are mostly small batches, Hybrid-32T should track DMA and zero-copy
 * should pay its per-batch pin overhead.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Ablation: transfer scheme in the full runtime");
    RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("GMT-Reuse speedup over BaM per transfer scheme");
    t.header({"App", "Hybrid-32T", "DMA only", "zero-copy only"});
    for (const auto &info : workloads::allWorkloads()) {
        const auto bam = runSystem(System::Bam, cfg, info.name);
        cfg.transferScheme = pcie::TransferScheme::Hybrid32T;
        const auto hybrid = runSystem(System::GmtReuse, cfg, info.name);
        cfg.transferScheme = pcie::TransferScheme::DmaOnly;
        const auto dma = runSystem(System::GmtReuse, cfg, info.name);
        cfg.transferScheme = pcie::TransferScheme::ZeroCopyOnly;
        const auto zc = runSystem(System::GmtReuse, cfg, info.name);
        t.row({info.name, stats::Table::num(hybrid.speedupOver(bam)),
               stats::Table::num(dma.speedupOver(bam)),
               stats::Table::num(zc.speedupOver(bam))});
    }
    emit(t, opt);
    return 0;
}
