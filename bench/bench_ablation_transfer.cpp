/**
 * @file
 * Ablation — transfer scheme inside the full runtime (§2.3).
 *
 * GMT-Reuse with Tier-1<->Tier-2 transfers forced to always-DMA,
 * always-zero-copy, or the paper's Hybrid-32T. Since runtime transfers
 * are mostly small batches, Hybrid-32T should track DMA and zero-copy
 * should pay its per-batch pin overhead.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Ablation: transfer scheme in the full runtime");
    RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("GMT-Reuse speedup over BaM per transfer scheme");
    t.header({"App", "Hybrid-32T", "DMA only", "zero-copy only"});
    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads()) {
        specs.push_back({System::Bam, info.name, cfg, 64});
        for (auto scheme : {pcie::TransferScheme::Hybrid32T,
                            pcie::TransferScheme::DmaOnly,
                            pcie::TransferScheme::ZeroCopyOnly}) {
            cfg.transferScheme = scheme;
            specs.push_back({System::GmtReuse, info.name, cfg, 64});
        }
    }
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        const auto &hybrid = results[idx++];
        const auto &dma = results[idx++];
        const auto &zc = results[idx++];
        t.row({info.name, stats::Table::num(hybrid.speedupOver(bam)),
               stats::Table::num(dma.speedupOver(bam)),
               stats::Table::num(zc.speedupOver(bam))});
    }
    emit(t, opt);
    return 0;
}
