/**
 * @file
 * Extension — Tier-3 bandwidth sensitivity via SSD striping.
 *
 * The BaM lineage scales storage bandwidth by striping over SSD arrays;
 * the paper's platform has a single drive (Table 1). Sweeping 1/2/4
 * drives answers a natural question about GMT's durability: host-memory
 * tiering matters *because* the SSD is the slow tier, so GMT-Reuse's
 * advantage over BaM should shrink as the array widens — while never
 * inverting, since Tier-2 hits also relieve latency and PCIe pressure.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Extension: SSD array scaling (GMT-Reuse vs BaM)");

    stats::Table t("GMT-Reuse speedup over BaM per Tier-3 drive count");
    t.header({"App", "1 SSD", "2 SSDs", "4 SSDs"});

    std::vector<std::vector<double>> per_drives(3);
    std::vector<std::vector<std::string>> rows;
    for (const auto &info : workloads::allWorkloads())
        rows.push_back({info.name});

    std::vector<RunSpec> specs;
    for (unsigned drives : {1u, 2u, 4u}) {
        RuntimeConfig cfg = defaultConfig(opt);
        cfg.numSsds = drives;
        for (const auto &info : workloads::allWorkloads()) {
            specs.push_back({System::Bam, info.name, cfg, 64});
            specs.push_back({System::GmtReuse, info.name, cfg, 64});
        }
    }
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (unsigned col = 0; col < 3; ++col) {
        std::size_t i = 0;
        for ([[maybe_unused]] const auto &info :
             workloads::allWorkloads()) {
            const auto &bam = results[idx++];
            const auto &reuse = results[idx++];
            const double s = reuse.speedupOver(bam);
            per_drives[col].push_back(s);
            rows[i++].push_back(stats::Table::num(s));
        }
    }
    for (auto &r : rows)
        t.row(r);
    t.row({"geo-mean", stats::Table::num(meanSpeedup(per_drives[0])),
           stats::Table::num(meanSpeedup(per_drives[1])),
           stats::Table::num(meanSpeedup(per_drives[2]))});
    emit(t, opt);
    std::printf("Expected: the Tier-2 advantage narrows as Tier-3 "
                "bandwidth grows, but stays above 1.\n");
    return 0;
}
