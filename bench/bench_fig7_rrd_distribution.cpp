/**
 * @file
 * Figure 7 — per-application RRD distributions at Tier-1 eviction,
 * with the Tier-1 and Tier-1+Tier-2 capacity demarcations, plus the
 * page-reuse percentage printed above each plot in the paper.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Figure 7 (RRD distributions)");
    const RuntimeConfig cfg = defaultConfig(opt);
    const std::uint64_t t1 = cfg.tier1Pages;
    const std::uint64_t t12 = cfg.tier1Pages + cfg.tier2Pages;

    stats::Table t("Figure 7: RRD distribution at Tier-1 evictions "
                   "(fraction of reused evictions per tier band)");
    t.header({"App", "Reuse%", "RRD<T1", "T1<=RRD<T1+T2", "RRD>=T1+T2",
              "never-reused evictions", "paper bias"});

    const auto &apps = workloads::allWorkloads();
    std::vector<TraceAnalysis> analyses(apps.size());
    forEach(apps.size(), opt, [&](std::size_t i) {
        workloads::WorkloadConfig wc;
        wc.pages = cfg.numPages;
        wc.seed = cfg.seed + 13;
        auto stream = workloads::makeWorkload(apps[i].name, wc);
        analyses[i] = analyzeStream(*stream, t1);
    });

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &info = apps[i];
        const TraceAnalysis &a = analyses[i];

        std::uint64_t never = 0;
        for (const auto &e : a.evictions)
            never += e.reusedAgain ? 0 : 1;

        t.row({info.name, stats::Table::num(a.reusePct(), 1),
               stats::Table::pct(a.rrdFractionBetween(0, t1)),
               stats::Table::pct(a.rrdFractionBetween(t1, t12)),
               stats::Table::pct(a.rrdFractionBetween(
                   t12, std::uint64_t(1) << 62)),
               std::to_string(never), info.rrdBias});
    }
    emit(t, opt);
    std::printf("Tier demarcations: |T1| = %llu pages, |T1|+|T2| = %llu "
                "pages (vertical lines in the paper's plots).\n",
                (unsigned long long)t1, (unsigned long long)t12);
    return 0;
}
