/**
 * @file
 * Ablation — the §2.2 Tier-3-overflow redirection heuristic.
 *
 * GMT-Reuse with and without the >80%-Tier-3 redirection, on all nine
 * apps. The paper explains Hotspot's whole 125% speedup through this
 * heuristic ("nearly all pages would go to Tier-3 and there will be a
 * gross under-utilization of Tier-2"); apps with genuine Tier-2 bias
 * should be unaffected.
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Ablation: overflow-redirection heuristic");
    RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("GMT-Reuse speedup over BaM: heuristic on vs off");
    t.header({"App", "with heuristic", "without", "redirects (on)"});
    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads()) {
        specs.push_back({System::Bam, info.name, cfg, 64});
        cfg.overflowHeuristic = true;
        specs.push_back({System::GmtReuse, info.name, cfg, 64});
        cfg.overflowHeuristic = false;
        specs.push_back({System::GmtReuse, info.name, cfg, 64});
    }
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        const auto &on = results[idx++];
        const auto &off = results[idx++];
        t.row({info.name, stats::Table::num(on.speedupOver(bam)),
               stats::Table::num(off.speedupOver(bam)),
               std::to_string(on.overflowRedirects)});
    }
    emit(t, opt);
    std::printf("Expected: Hotspot collapses toward 1.0 without the "
                "heuristic; Tier-2-biased apps barely move.\n");
    return 0;
}
