/**
 * @file
 * Ablation — §2 extension: demand-miss-triggered sequential prefetch.
 *
 * The paper studies demand-only movement and notes placement "can also
 * be considered in conjunction with prefetching". GMT-Reuse with
 * next-line prefetch degrees 0/2/4: sequential apps (Pathfinder,
 * lavaMD, Hotspot sweeps) should gain; irregular graph apps should be
 * neutral or slightly hurt (wasted SSD bandwidth).
 */

#include "bench_common.hpp"

using namespace gmt;
using namespace gmt::bench;
using namespace gmt::harness;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv);
    printPlatformBanner("Ablation: sequential prefetch degree");
    RuntimeConfig cfg = defaultConfig(opt);

    stats::Table t("GMT-Reuse speedup over BaM per prefetch degree");
    t.header({"App", "degree 0", "degree 2", "degree 4",
              "prefetches (deg 4)"});
    std::vector<RunSpec> specs;
    for (const auto &info : workloads::allWorkloads()) {
        cfg.prefetchDegree = 0; // the BaM reference never prefetches
        specs.push_back({System::Bam, info.name, cfg, 64});
        for (unsigned degree : {0u, 2u, 4u}) {
            cfg.prefetchDegree = degree;
            specs.push_back({System::GmtReuse, info.name, cfg, 64});
        }
    }
    const auto results = runAll(specs, opt);

    std::size_t idx = 0;
    for (const auto &info : workloads::allWorkloads()) {
        const auto &bam = results[idx++];
        std::vector<std::string> row = {info.name};
        std::uint64_t prefetches = 0;
        for (unsigned degree : {0u, 2u, 4u}) {
            const auto &r = results[idx++];
            row.push_back(stats::Table::num(r.speedupOver(bam)));
            if (degree == 4)
                prefetches = r.prefetches;
        }
        row.push_back(std::to_string(prefetches));
        t.row(row);
    }
    emit(t, opt);
    return 0;
}
