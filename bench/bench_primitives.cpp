/**
 * @file
 * google-benchmark microbenchmarks over GMT's core data structures:
 * the hot-path costs that bound the simulator's own throughput and
 * document the cost model of the software structures GMT relies on.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/bam_runtime.hpp"
#include "core/config.hpp"
#include "core/runtime.hpp"
#include "gpu/coalescer.hpp"
#include "gpu/gpu_engine.hpp"
#include "harness/thread_pool.hpp"
#include "mem/frame_pool.hpp"
#include "replacement/policy.hpp"
#include "reuse/olken_tree.hpp"
#include "reuse/ols_regressor.hpp"
#include "sim/channel.hpp"
#include "sim/event_queue.hpp"
#include "tier2/directory.hpp"
#include "trace/trace.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "workloads/tenant_schedule.hpp"
#include "workloads/zipf_stream.hpp"

using namespace gmt;

static void
BM_OlkenTreeAccess(benchmark::State &state)
{
    const std::uint64_t pages = state.range(0);
    reuse::OlkenTree tree;
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.access(rng.below(pages)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlkenTreeAccess)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void
BM_DirectoryLookup(benchmark::State &state)
{
    tier2::Directory dir(4096);
    Rng rng(2);
    for (PageId p = 0; p < 4096; ++p)
        dir.insert(p * 7, FrameId(p));
    for (auto _ : state)
        benchmark::DoNotOptimize(dir.find(rng.below(8192) * 7));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryLookup);

static void
BM_ClockVictimSelection(benchmark::State &state)
{
    const std::uint64_t frames = state.range(0);
    mem::FramePool pool(frames);
    auto clock = replacement::makeClock(frames);
    for (std::uint64_t i = 0; i < frames; ++i)
        clock->onInsert(pool.allocate(i));
    Rng rng(3);
    for (auto _ : state) {
        const FrameId v = clock->selectVictim(pool);
        benchmark::DoNotOptimize(v);
        clock->onAccess(FrameId(rng.below(frames)));
        clock->onInsert(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClockVictimSelection)->Arg(256)->Arg(4096);

namespace
{

/**
 * The seed EventQueue (std::priority_queue of std::function entries),
 * kept as the reference point for the pooled/4-ary implementation in
 * sim/event_queue.hpp: every schedule type-erases through
 * std::function and every dispatch copies the entry out of the heap.
 */
class LegacyEventQueue
{
  public:
    SimTime now() const { return currentTime; }

    void
    scheduleAt(SimTime when, std::function<void()> fn)
    {
        events.push(Entry{when, nextSeq++, std::move(fn)});
    }

    bool
    step()
    {
        if (events.empty())
            return false;
        Entry e = events.top();
        events.pop();
        currentTime = e.when;
        e.fn();
        return true;
    }

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> events;
    SimTime currentTime = 0;
    std::uint64_t nextSeq = 0;
};

/** EventQueue pinned to the timing-wheel backend (the templates below
 *  default-construct their queue). */
struct WheelEventQueue : sim::EventQueue
{
    WheelEventQueue() : sim::EventQueue(sim::SchedulerBackend::Wheel) {}
};

/** Schedule-one/dispatch-one churn over a standing population. */
template <typename Queue>
void
eventQueueChurn(benchmark::State &state)
{
    Queue q;
    Rng rng(4);
    int sink = 0;
    for (int i = 0; i < 64; ++i)
        q.scheduleAt(rng.below(1000), [&] { ++sink; });
    for (auto _ : state) {
        q.scheduleAt(q.now() + rng.below(1000) + 1, [&] { ++sink; });
        q.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

/** Churn with a deep standing population (state.range(0) pending
 *  events): this is where O(log n) heap sifts separate from the
 *  wheel's O(1) bucket pushes. */
template <typename Queue>
void
eventQueueChurnDeep(benchmark::State &state)
{
    Queue q;
    Rng rng(4);
    int sink = 0;
    const int population = int(state.range(0));
    for (int i = 0; i < population; ++i)
        q.scheduleAt(rng.below(1u << 20), [&] { ++sink; });
    for (auto _ : state) {
        q.scheduleAt(q.now() + rng.below(1u << 20) + 1, [&] { ++sink; });
        q.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

/** Same churn with a fatter capture (4 x 8 bytes: a transfer-completion
 *  style event), still inside the pooled queue's inline buffer. */
template <typename Queue>
void
eventQueueChurnFatCapture(benchmark::State &state)
{
    Queue q;
    Rng rng(4);
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3;
    for (auto _ : state) {
        q.scheduleAt(q.now() + rng.below(1000) + 1,
                     [&sink, a, b, c] { sink += a + b + c; });
        q.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

} // namespace

static void
BM_EventQueueChurn(benchmark::State &state)
{
    eventQueueChurn<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueChurn);

static void
BM_EventQueueChurnLegacy(benchmark::State &state)
{
    eventQueueChurn<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnLegacy);

static void
BM_EventQueueFatCapture(benchmark::State &state)
{
    eventQueueChurnFatCapture<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueFatCapture);

static void
BM_EventQueueFatCaptureLegacy(benchmark::State &state)
{
    eventQueueChurnFatCapture<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueFatCaptureLegacy);

static void
BM_EventQueueChurnWheel(benchmark::State &state)
{
    eventQueueChurn<WheelEventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnWheel);

static void
BM_EventQueueFatCaptureWheel(benchmark::State &state)
{
    eventQueueChurnFatCapture<WheelEventQueue>(state);
}
BENCHMARK(BM_EventQueueFatCaptureWheel);

static void
BM_EventQueueChurnDeep(benchmark::State &state)
{
    eventQueueChurnDeep<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnDeep)->Arg(1 << 12)->Arg(1 << 16);

static void
BM_EventQueueChurnDeepWheel(benchmark::State &state)
{
    eventQueueChurnDeep<WheelEventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnDeepWheel)->Arg(1 << 12)->Arg(1 << 16);

static void
BM_BandwidthChannelTransfer(benchmark::State &state)
{
    sim::BandwidthChannel ch("bench", 12e9, 1000);
    SimTime now = 0;
    for (auto _ : state) {
        now = ch.transferAt(now, 64 * 1024);
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthChannelTransfer);

namespace
{

/**
 * The seed coalescer: one heap-backed std::vector per warp instruction
 * (reserve(4), growing under divergence). Kept as the reference point
 * for the inline CoalescedBatch, exactly like LegacyEventQueue above.
 */
std::vector<gpu::CoalescedRequest>
legacyCoalesce(const gpu::Coalescer::Warp &warp)
{
    std::vector<gpu::CoalescedRequest> out;
    out.reserve(4);
    for (const gpu::Coalescer::LaneAccess &lane : warp) {
        if (!lane.active)
            continue;
        const PageId page = lane.byteAddress / kPageBytes;
        bool merged = false;
        for (auto &req : out) {
            if (req.page == page) {
                ++req.lanes;
                req.write |= lane.write;
                merged = true;
                break;
            }
        }
        if (!merged)
            out.push_back(gpu::CoalescedRequest{page, 1, lane.write});
    }
    return out;
}

/** Strided warp: @p pages distinct pages across the 32 lanes. */
gpu::Coalescer::Warp
stridedWarp(unsigned pages)
{
    gpu::Coalescer::Warp warp{};
    const std::uint64_t stride = std::uint64_t(pages) * kPageBytes / 32;
    for (unsigned lane = 0; lane < kWarpLanes; ++lane) {
        warp[lane].byteAddress = lane * stride;
        warp[lane].active = true;
        warp[lane].write = lane % 4 == 0;
    }
    return warp;
}

} // namespace

static void
BM_CoalescerBatch(benchmark::State &state)
{
    const gpu::Coalescer::Warp warp = stridedWarp(unsigned(state.range(0)));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const gpu::CoalescedBatch batch = gpu::Coalescer::coalesce(warp);
        sink += batch.size();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoalescerBatch)->Arg(1)->Arg(4)->Arg(32);

static void
BM_CoalescerLegacy(benchmark::State &state)
{
    const gpu::Coalescer::Warp warp = stridedWarp(unsigned(state.range(0)));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const auto reqs = legacyCoalesce(warp);
        sink += reqs.size();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoalescerLegacy)->Arg(1)->Arg(4)->Arg(32);

namespace
{

const SimTime *
findPtr(util::FlatMap<PageId, SimTime> &map, PageId key)
{
    return map.find(key);
}

const SimTime *
findPtr(std::unordered_map<PageId, SimTime> &map, PageId key)
{
    const auto it = map.find(key);
    return it != map.end() ? &it->second : nullptr;
}

/** Hit-heavy probe mix over a pre-populated map of @p Map type. */
template <typename Map>
void
mapLookupBench(benchmark::State &state, Map &map)
{
    Rng rng(6);
    for (PageId p = 0; p < 4096; ++p)
        map.emplace(p * 3, SimTime(p));
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const PageId key = rng.below(8192) * 3; // ~50% hits
        if (const auto *v = findPtr(map, key))
            sink += std::uint64_t(*v);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}

/** The arrivals-style churn: insert, look up, erase. */
template <typename Map>
void
mapChurnBench(benchmark::State &state, Map &map)
{
    Rng rng(8);
    for (PageId p = 0; p < 256; ++p)
        map.emplace(p, SimTime(p));
    for (auto _ : state) {
        const PageId key = rng.below(4096);
        map.emplace(key, SimTime(key));
        benchmark::DoNotOptimize(findPtr(map, key));
        map.erase(rng.below(4096));
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

static void
BM_FlatMapLookup(benchmark::State &state)
{
    util::FlatMap<PageId, SimTime> map(8192);
    mapLookupBench(state, map);
}
BENCHMARK(BM_FlatMapLookup);

static void
BM_StdUnorderedMapLookup(benchmark::State &state)
{
    std::unordered_map<PageId, SimTime> map;
    map.reserve(8192);
    mapLookupBench(state, map);
}
BENCHMARK(BM_StdUnorderedMapLookup);

static void
BM_FlatMapChurn(benchmark::State &state)
{
    util::FlatMap<PageId, SimTime> map(8192);
    mapChurnBench(state, map);
}
BENCHMARK(BM_FlatMapChurn);

static void
BM_StdUnorderedMapChurn(benchmark::State &state)
{
    std::unordered_map<PageId, SimTime> map;
    map.reserve(8192);
    mapChurnBench(state, map);
}
BENCHMARK(BM_StdUnorderedMapChurn);

static void
BM_GmtAccessPathHit(benchmark::State &state)
{
    // Working set == Tier-1: pure steady-state hit path, the floor of
    // every figure reproduction's per-access cost.
    RuntimeConfig cfg;
    cfg.numPages = 256;
    cfg.tier1Pages = 256;
    cfg.tier2Pages = 1024;
    cfg.policy = PlacementPolicy::Reuse;
    auto rt = makeGmtRuntime(cfg);
    Rng rng(7);
    SimTime now = 0;
    for (PageId p = 0; p < cfg.numPages; ++p)
        now = rt->access(now + 1, 0, p, false).readyAt;
    std::uint64_t i = 0;
    for (auto _ : state) {
        const PageId page = rng.below(cfg.numPages);
        now += 10;
        benchmark::DoNotOptimize(
            rt->access(now, WarpId(i & 31), page, (i & 7) == 0));
        if ((++i & 1023) == 0)
            rt->backgroundTick(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmtAccessPathHit);

static void
BM_GmtAccessPathOversubscribed(benchmark::State &state)
{
    // OSF ~2.7 zipf traffic: misses, evictions, placement, sampling —
    // the full GMT-Reuse access path end to end.
    RuntimeConfig cfg;
    cfg.numPages = 2048;
    cfg.tier1Pages = 256;
    cfg.tier2Pages = 512;
    cfg.policy = PlacementPolicy::Reuse;
    auto rt = makeGmtRuntime(cfg);
    Rng rng(11);
    ZipfSampler zipf(cfg.numPages, 0.8);
    SimTime now = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        const PageId page = zipf.sample(rng);
        now += 10;
        benchmark::DoNotOptimize(
            rt->access(now, WarpId(i & 31), page, (i & 7) == 0));
        if ((++i & 1023) == 0)
            rt->backgroundTick(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmtAccessPathOversubscribed);

static void
BM_GmtWarpAccessPath(benchmark::State &state)
{
    // Full per-warp-instruction path: coalesce the 32 lanes, then feed
    // every resulting request through the runtime. This is the loop the
    // GPU engine runs per instruction, so the coalescer's return-value
    // representation (heap vector vs inline batch) sits directly on it.
    RuntimeConfig cfg;
    cfg.numPages = 256;
    cfg.tier1Pages = 256;
    cfg.tier2Pages = 1024;
    cfg.policy = PlacementPolicy::Reuse;
    auto rt = makeGmtRuntime(cfg);
    SimTime now = 0;
    for (PageId p = 0; p < cfg.numPages; ++p)
        now = rt->access(now + 1, 0, p, false).readyAt;

    // 3:1 coherent-to-divergent warp mix over the resident set.
    Rng rng(13);
    std::array<gpu::Coalescer::Warp, 64> warps{};
    for (unsigned w = 0; w < warps.size(); ++w) {
        const std::uint64_t base = rng.below(cfg.numPages) * kPageBytes;
        for (unsigned lane = 0; lane < kWarpLanes; ++lane) {
            warps[w][lane].active = true;
            warps[w][lane].write = lane % 4 == 0;
            warps[w][lane].byteAddress =
                w % 4 == 0 ? (lane % 8) * kPageBytes + lane * 8
                           : base + lane * 8;
        }
    }

    gpu::MergeStats stats;
    std::uint64_t i = 0;
    for (auto _ : state) {
        const auto reqs = gpu::Coalescer::coalesce(warps[i & 63], stats);
        now += 10;
        for (const auto &req : reqs)
            benchmark::DoNotOptimize(
                rt->access(now, WarpId(i & 31), req.page, req.write));
        if ((++i & 1023) == 0)
            rt->backgroundTick(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmtWarpAccessPath);

namespace
{

/**
 * One full GpuEngine run per iteration over a zipf stream, with the
 * event scheduler, hit fast path, and epoch fast-forward chosen per
 * variant. The "legacy" variant (heap scheduler, fast path off) is the
 * PR 3 engine's cost shape; "WheelFast" is the timing wheel plus the
 * event-free hit streak (PR 4); "FastFwd" adds the planned epochs
 * (PR 6). All produce identical simulated results — only wall time
 * differs — and the per-cell event split (dispatched vs elided, plus
 * epochs entered) is exported as benchmark counters so bench_report's
 * trajectory JSON shows where the wins come from.
 */
void
runEngineCell(benchmark::State &state, TieredRuntime &rt,
              gpu::AccessStream &stream, const gpu::EngineConfig &ec)
{
    gpu::GpuEngine engine(ec);

    std::uint64_t makespan = 0;
    gpu::RunResult r;
    for (auto _ : state) {
        rt.reset();
        stream.reset();
        r = engine.run(rt, stream);
        makespan = r.makespanNs;
        state.SetItemsProcessed(state.items_processed()
                                + std::int64_t(r.accesses));
    }
    benchmark::DoNotOptimize(makespan);
    state.counters["events_dispatched"] =
        benchmark::Counter(double(r.eventsDispatched));
    state.counters["events_elided"] =
        benchmark::Counter(double(r.fastPathHits));
    state.counters["ff_epochs"] = benchmark::Counter(double(r.ffEpochs));
    state.counters["lane_dispatched"] =
        benchmark::Counter(double(r.laneDispatches));
}

void
engineRunBench(benchmark::State &state, const RuntimeConfig &cfg,
               double zipf_skew, std::uint64_t visits,
               sim::SchedulerBackend backend, bool fast_path,
               bool fast_forward, bool bam = false)
{
    RuntimeConfig rc = cfg;
    rc.scheduler = backend;
    auto rt = bam ? baselines::makeBamRuntime(rc) : makeGmtRuntime(rc);

    workloads::WorkloadConfig wc;
    wc.pages = rc.numPages;
    wc.warps = 64;
    wc.touchesPerVisit = 4;
    workloads::ZipfStream stream(wc, zipf_skew, visits);

    gpu::EngineConfig ec;
    ec.hitFastPath = fast_path;
    ec.fastForward = fast_forward;
    runEngineCell(state, *rt, stream, ec);
}

/** Resident working set: every steady-state access is a Tier-1 hit, so
 *  the engine's dispatch loop dominates. */
RuntimeConfig
hitLoopConfig()
{
    RuntimeConfig cfg;
    cfg.numPages = 1024;
    cfg.tier1Pages = 1024;
    cfg.tier2Pages = 2048;
    cfg.policy = PlacementPolicy::Reuse;
    cfg.sampleTarget = 0;
    return cfg;
}

/** A shrunk fig8 cell: GMT-Reuse at OSF ~1.7 with zipf locality —
 *  misses, evictions and placements in paper-like proportions. */
RuntimeConfig
fig8CellConfig()
{
    RuntimeConfig cfg;
    cfg.numPages = 2560;
    cfg.tier1Pages = 512;
    cfg.tier2Pages = 1024;
    cfg.policy = PlacementPolicy::Reuse;
    return cfg;
}

/** A fig11-style high-OSF cell: the working set is 16x Tier-1 and the
 *  zipf skew is nearly flat, so almost every visit is a cold miss
 *  feeding a sustained eviction storm — the shape the bulk-transfer
 *  planners (GMT_BULKFWD) target. */
RuntimeConfig
stormCellConfig()
{
    RuntimeConfig cfg;
    cfg.numPages = 8192;
    cfg.tier1Pages = 512;
    cfg.tier2Pages = 1024;
    cfg.policy = PlacementPolicy::Reuse;
    cfg.sampleTarget = 0;
    return cfg;
}

/** The cold-miss sweep itself: a strided walk over the whole working
 *  set, so every visit's reuse distance exceeds Tier-1 and every visit
 *  is a miss. Deliberately trivial to generate — the cell measures the
 *  storm's event machinery, not the workload sampler. */
class SweepStream : public workloads::SequenceStream
{
  public:
    SweepStream(const workloads::WorkloadConfig &config,
                std::uint64_t total_visits)
        : SequenceStream("sweep", config), totalVisits(total_visits)
    {
    }

  protected:
    bool
    nextItem(workloads::WorkItem &out) override
    {
        if (issued >= totalVisits)
            return false;
        out.page = (issued * 7) % cfg.pages;
        out.write = (issued & 3) == 0;
        out.touches = cfg.touchesPerVisit;
        ++issued;
        return true;
    }

    void resetSequence() override { issued = 0; }

  private:
    std::uint64_t totalVisits;
    std::uint64_t issued = 0;
};

/** Storm cell with GMT_BULKFWD pinned for the whole run. The knob is
 *  resolved at runtime/engine construction, so the env var must be set
 *  before the runtime is built; restore afterwards so other benchmarks
 *  keep the process default. */
void
engineStormBench(benchmark::State &state, const char *bulkfwd, bool bam)
{
    const char *prev = std::getenv("GMT_BULKFWD");
    const std::string saved = prev ? prev : "";
    setenv("GMT_BULKFWD", bulkfwd, 1);
    {
        RuntimeConfig rc = stormCellConfig();
        rc.scheduler = sim::SchedulerBackend::Wheel;
        auto rt =
            bam ? baselines::makeBamRuntime(rc) : makeGmtRuntime(rc);

        workloads::WorkloadConfig wc;
        wc.pages = rc.numPages;
        wc.warps = 64;
        wc.touchesPerVisit = 4;
        SweepStream stream(wc, 40000);

        gpu::EngineConfig ec;
        ec.hitFastPath = true;
        ec.fastForward = true;
        runEngineCell(state, *rt, stream, ec);
    }
    if (prev)
        setenv("GMT_BULKFWD", saved.c_str(), 1);
    else
        unsetenv("GMT_BULKFWD");
}

} // namespace

static void
BM_EngineHitLoopLegacy(benchmark::State &state)
{
    engineRunBench(state, hitLoopConfig(), 0.6, 100000,
                   sim::SchedulerBackend::Heap, false, false);
}
BENCHMARK(BM_EngineHitLoopLegacy)->Unit(benchmark::kMicrosecond);

static void
BM_EngineHitLoopWheelFast(benchmark::State &state)
{
    engineRunBench(state, hitLoopConfig(), 0.6, 100000,
                   sim::SchedulerBackend::Wheel, true, false);
}
BENCHMARK(BM_EngineHitLoopWheelFast)->Unit(benchmark::kMicrosecond);

static void
BM_EngineHitLoopFastFwd(benchmark::State &state)
{
    engineRunBench(state, hitLoopConfig(), 0.6, 100000,
                   sim::SchedulerBackend::Wheel, true, true);
}
BENCHMARK(BM_EngineHitLoopFastFwd)->Unit(benchmark::kMicrosecond);

static void
BM_EngineFig8CellLegacy(benchmark::State &state)
{
    engineRunBench(state, fig8CellConfig(), 0.8, 60000,
                   sim::SchedulerBackend::Heap, false, false);
}
BENCHMARK(BM_EngineFig8CellLegacy)->Unit(benchmark::kMicrosecond);

static void
BM_EngineFig8CellWheelFast(benchmark::State &state)
{
    engineRunBench(state, fig8CellConfig(), 0.8, 60000,
                   sim::SchedulerBackend::Wheel, true, false);
}
BENCHMARK(BM_EngineFig8CellWheelFast)->Unit(benchmark::kMicrosecond);

static void
BM_EngineFig8CellFastFwd(benchmark::State &state)
{
    engineRunBench(state, fig8CellConfig(), 0.8, 60000,
                   sim::SchedulerBackend::Wheel, true, true);
}
BENCHMARK(BM_EngineFig8CellFastFwd)->Unit(benchmark::kMicrosecond);

static void
BM_EngineStormCellOracle(benchmark::State &state)
{
    // Per-event oracle: every channel/ring completion is its own
    // scheduler event, every miss turn rides the base event queue.
    engineStormBench(state, "0", false);
}
BENCHMARK(BM_EngineStormCellOracle)->Unit(benchmark::kMicrosecond);

static void
BM_EngineStormCellBulkFwd(benchmark::State &state)
{
    // Closed-form batch planners plus the cohort lane: identical
    // simulated results, but the storm's completion schedules are
    // computed analytically and miss turns drain through the lane
    // (see the lane_dispatched counter) instead of the scheduler.
    engineStormBench(state, "1", false);
}
BENCHMARK(BM_EngineStormCellBulkFwd)->Unit(benchmark::kMicrosecond);

static void
BM_EngineBamStormCellOracle(benchmark::State &state)
{
    // Same storm through the BaM baseline: no Tier-2 directory or
    // classifier on the miss path, so the per-event scheduler traffic
    // is a far bigger slice of the oracle's wall time.
    engineStormBench(state, "0", true);
}
BENCHMARK(BM_EngineBamStormCellOracle)->Unit(benchmark::kMicrosecond);

static void
BM_EngineBamStormCellBulkFwd(benchmark::State &state)
{
    engineStormBench(state, "1", true);
}
BENCHMARK(BM_EngineBamStormCellBulkFwd)->Unit(benchmark::kMicrosecond);

static void
BM_EngineReuseSampledCellSharded(benchmark::State &state)
{
    // The heaviest single-cell shape: GMT-Reuse with the sampling
    // phase covering most of the run, so the Olken/OLS drain is on the
    // critical path. Arg = shard count; 1 is the single-thread oracle,
    // >1 pipelines reuse-distance preparation onto a borrowed pool
    // worker. All arguments produce byte-identical simulated results.
    RuntimeConfig cfg = fig8CellConfig(); // default sampling target: on
    cfg.shards = unsigned(state.range(0));
    cfg.scheduler = sim::SchedulerBackend::Wheel;
    auto rt = makeGmtRuntime(cfg);

    workloads::WorkloadConfig wc;
    wc.pages = cfg.numPages;
    wc.warps = 64;
    wc.touchesPerVisit = 4;
    workloads::ZipfStream stream(wc, 0.8, 60000);

    gpu::EngineConfig ec;
    ec.hitFastPath = true;
    ec.fastForward = true;
    gpu::GpuEngine engine(ec);

    harness::ThreadPool &pool = harness::ThreadPool::shared();
    gpu::RunResult r;
    for (auto _ : state) {
        state.PauseTiming();
        rt->reset();
        stream.reset();
        // The drain actor borrows an idle pool worker at run start;
        // after the previous iteration's stop the worker re-parks
        // asynchronously, so wait outside the timed region.
        for (int i = 0; i < 5000 && cfg.shards > 1 && pool.idleCount() == 0;
             ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        state.ResumeTiming();
        r = engine.run(*rt, stream);
        state.SetItemsProcessed(state.items_processed()
                                + std::int64_t(r.accesses));
    }
    state.counters["shard.domains"] = benchmark::Counter(double(r.shards));
    state.counters["shard.epochs"] =
        benchmark::Counter(double(r.shardEpochs));
    state.counters["shard.deferred"] =
        benchmark::Counter(double(r.shardDeferred));
    state.counters["shard.barrier_waits"] =
        benchmark::Counter(double(r.shardBarrierWaits));
    state.counters["events_dispatched"] =
        benchmark::Counter(double(r.eventsDispatched));
}
BENCHMARK(BM_EngineReuseSampledCellSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

static void
BM_EngineBamFig8CellLegacy(benchmark::State &state)
{
    // The BaM fig8 cell under the seed engine configuration (heap
    // dispatch, no inline streak, no fast-forward): the in-binary
    // baseline the PR 6 headline target is measured against.
    engineRunBench(state, fig8CellConfig(), 0.8, 60000,
                   sim::SchedulerBackend::Heap, false, false,
                   /*bam=*/true);
}
BENCHMARK(BM_EngineBamFig8CellLegacy)->Unit(benchmark::kMicrosecond);

static void
BM_EngineBamFig8CellWheelFast(benchmark::State &state)
{
    // The BaM fig8 cell (GmtRuntime in bamMode: Tier-2 absent, every
    // miss goes straight to the NVMe rings) with PR 4's per-access
    // streak — the baseline the fast-forward target is measured
    // against.
    engineRunBench(state, fig8CellConfig(), 0.8, 60000,
                   sim::SchedulerBackend::Wheel, true, false,
                   /*bam=*/true);
}
BENCHMARK(BM_EngineBamFig8CellWheelFast)->Unit(benchmark::kMicrosecond);

static void
BM_EngineBamFig8CellFastFwd(benchmark::State &state)
{
    // Same cell with planned epochs: BaM's ring-idle batched hits are
    // the first fast-forward client (ISSUE 6 headline target).
    engineRunBench(state, fig8CellConfig(), 0.8, 60000,
                   sim::SchedulerBackend::Wheel, true, true,
                   /*bam=*/true);
}
BENCHMARK(BM_EngineBamFig8CellFastFwd)->Unit(benchmark::kMicrosecond);

namespace
{

/** Four contending open-loop tenants over one GmtRuntime — the serving
 *  steady state (arrival pacing, per-tenant accounting, shared or
 *  partitioned replacement) as a wall-time cell. Per-tenant p99s are
 *  exported as counters so the committed bench trajectory shows the
 *  QoS effect alongside the cost. */
void
tenantServingBench(benchmark::State &state, bool partitioned,
                   bool monitored = false)
{
    RuntimeConfig cfg;
    cfg.tier1Pages = 64;
    cfg.tier2Pages = 256;
    cfg.numPages = 640;
    cfg.policy = PlacementPolicy::Reuse;

    std::vector<workloads::TenantSpec> specs(4);
    const workloads::ArrivalPattern patterns[4] = {
        workloads::ArrivalPattern::Zipf,
        workloads::ArrivalPattern::Uniform,
        workloads::ArrivalPattern::Scan,
        workloads::ArrivalPattern::Hotspot};
    for (unsigned t = 0; t < 4; ++t) {
        specs[t].name = "t" + std::to_string(t);
        specs[t].pattern = patterns[t];
        specs[t].pages = 160;
        specs[t].requests = 2000;
        specs[t].periodNs = 50000;
        specs[t].phaseNs = t * 12500;
        specs[t].seed = 11 + t;
    }
    if (partitioned) {
        cfg.tenants.pageBounds = {160, 320, 480, 640};
        cfg.tenants.partitionTier1 = true;
        cfg.tenants.tier1Quota = {16, 16, 16, 16};
        cfg.tenants.pinnedPages = {8, 0, 0, 4};
        cfg.tenants.fetchWindow = 4;
    }
    if (monitored) {
        // p99 <= 1 ms per 1 ms window — tight enough that this
        // thrashing cell breaches, so the breach path is measured too.
        trace::SloSpec spec;
        spec.quantilePct = 99;
        spec.targetNs = 1'000'000;
        spec.windowNs = 1'000'000;
        cfg.tenants.slo = {spec, spec, spec, spec};
    }

    auto rt = makeGmtRuntime(cfg);
    workloads::TenantStream stream(specs);
    gpu::GpuEngine engine{{}};

    trace::TraceSession::Options so;
    so.slo = monitored;
    so.flight = monitored;
    std::optional<trace::TraceSession> session;

    std::uint64_t accesses = 0;
    for (auto _ : state) {
        if (monitored)
            session.emplace(so); // fresh monitors; windows restart at 0
        rt->reset();
        stream.reset();
        if (monitored) {
            rt->attachTrace(&*session);
            stream.attachTrace(&*session);
        }
        const gpu::RunResult r = engine.run(*rt, stream);
        if (monitored)
            session->quiesce(rt->flush(r.makespanNs));
        accesses = r.accesses;
        state.SetItemsProcessed(state.items_processed()
                                + std::int64_t(r.accesses));
    }
    benchmark::DoNotOptimize(accesses);
    for (unsigned t = 0; t < 4; ++t) {
        const auto snap = stream.snapshot(t);
        state.counters["p99_" + snap.name] =
            benchmark::Counter(double(snap.latency->percentile(99)));
    }
    if (session) {
        // slo.* counters ride the committed bench trajectory so breach
        // counts (and recorder pressure) are tracked run over run.
        const trace::SloTracker *slo = session->slo();
        for (std::size_t t = 0; t < slo->tenantCount(); ++t) {
            const auto &ts = slo->tenant(t);
            state.counters["slo." + ts.name + ".breaches"] =
                benchmark::Counter(double(ts.breaches + ts.burns));
            state.counters["slo." + ts.name + ".worst_window_ns"] =
                benchmark::Counter(double(ts.worstWindowNs));
        }
        const trace::FlightRecorder *rec = session->flight();
        state.counters["flight.recorded"] =
            benchmark::Counter(double(rec->recorded()));
        state.counters["flight.snapshots"] =
            benchmark::Counter(double(rec->snapshotCount()));
    }
}

} // namespace

static void
BM_EngineTenantServingShared(benchmark::State &state)
{
    tenantServingBench(state, /*partitioned=*/false);
}
BENCHMARK(BM_EngineTenantServingShared)->Unit(benchmark::kMicrosecond);

static void
BM_EngineTenantServingPartitioned(benchmark::State &state)
{
    tenantServingBench(state, /*partitioned=*/true);
}
BENCHMARK(BM_EngineTenantServingPartitioned)
    ->Unit(benchmark::kMicrosecond);

static void
BM_EngineTenantServingMonitored(benchmark::State &state)
{
    // The shared-clock serving cell with SLO monitors + flight recorder
    // attached: the observability tax on the serving hot path (ISSUE 10
    // acceptance: within 10% of the unmonitored cell).
    tenantServingBench(state, /*partitioned=*/false, /*monitored=*/true);
}
BENCHMARK(BM_EngineTenantServingMonitored)->Unit(benchmark::kMicrosecond);

static void
BM_OlsRegressorSample(benchmark::State &state)
{
    reuse::OlsRegressor ols;
    Rng rng(5);
    for (auto _ : state)
        ols.addSample(double(rng.below(10000)), double(rng.below(5000)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlsRegressorSample);

BENCHMARK_MAIN();
