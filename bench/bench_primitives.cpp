/**
 * @file
 * google-benchmark microbenchmarks over GMT's core data structures:
 * the hot-path costs that bound the simulator's own throughput and
 * document the cost model of the software structures GMT relies on.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <vector>

#include "mem/frame_pool.hpp"
#include "replacement/policy.hpp"
#include "reuse/olken_tree.hpp"
#include "reuse/ols_regressor.hpp"
#include "sim/channel.hpp"
#include "sim/event_queue.hpp"
#include "tier2/directory.hpp"
#include "util/rng.hpp"

using namespace gmt;

static void
BM_OlkenTreeAccess(benchmark::State &state)
{
    const std::uint64_t pages = state.range(0);
    reuse::OlkenTree tree;
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.access(rng.below(pages)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlkenTreeAccess)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void
BM_DirectoryLookup(benchmark::State &state)
{
    tier2::Directory dir(4096);
    Rng rng(2);
    for (PageId p = 0; p < 4096; ++p)
        dir.insert(p * 7, FrameId(p));
    for (auto _ : state)
        benchmark::DoNotOptimize(dir.find(rng.below(8192) * 7));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryLookup);

static void
BM_ClockVictimSelection(benchmark::State &state)
{
    const std::uint64_t frames = state.range(0);
    mem::FramePool pool(frames);
    auto clock = replacement::makeClock(frames);
    for (std::uint64_t i = 0; i < frames; ++i)
        clock->onInsert(pool.allocate(i));
    Rng rng(3);
    for (auto _ : state) {
        const FrameId v = clock->selectVictim(pool);
        benchmark::DoNotOptimize(v);
        clock->onAccess(FrameId(rng.below(frames)));
        clock->onInsert(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClockVictimSelection)->Arg(256)->Arg(4096);

namespace
{

/**
 * The seed EventQueue (std::priority_queue of std::function entries),
 * kept as the reference point for the pooled/4-ary implementation in
 * sim/event_queue.hpp: every schedule type-erases through
 * std::function and every dispatch copies the entry out of the heap.
 */
class LegacyEventQueue
{
  public:
    SimTime now() const { return currentTime; }

    void
    scheduleAt(SimTime when, std::function<void()> fn)
    {
        events.push(Entry{when, nextSeq++, std::move(fn)});
    }

    bool
    step()
    {
        if (events.empty())
            return false;
        Entry e = events.top();
        events.pop();
        currentTime = e.when;
        e.fn();
        return true;
    }

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> events;
    SimTime currentTime = 0;
    std::uint64_t nextSeq = 0;
};

/** Schedule-one/dispatch-one churn over a standing population. */
template <typename Queue>
void
eventQueueChurn(benchmark::State &state)
{
    Queue q;
    Rng rng(4);
    int sink = 0;
    for (int i = 0; i < 64; ++i)
        q.scheduleAt(rng.below(1000), [&] { ++sink; });
    for (auto _ : state) {
        q.scheduleAt(q.now() + rng.below(1000) + 1, [&] { ++sink; });
        q.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

/** Same churn with a fatter capture (4 x 8 bytes: a transfer-completion
 *  style event), still inside the pooled queue's inline buffer. */
template <typename Queue>
void
eventQueueChurnFatCapture(benchmark::State &state)
{
    Queue q;
    Rng rng(4);
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3;
    for (auto _ : state) {
        q.scheduleAt(q.now() + rng.below(1000) + 1,
                     [&sink, a, b, c] { sink += a + b + c; });
        q.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}

} // namespace

static void
BM_EventQueueChurn(benchmark::State &state)
{
    eventQueueChurn<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueChurn);

static void
BM_EventQueueChurnLegacy(benchmark::State &state)
{
    eventQueueChurn<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueChurnLegacy);

static void
BM_EventQueueFatCapture(benchmark::State &state)
{
    eventQueueChurnFatCapture<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueFatCapture);

static void
BM_EventQueueFatCaptureLegacy(benchmark::State &state)
{
    eventQueueChurnFatCapture<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventQueueFatCaptureLegacy);

static void
BM_BandwidthChannelTransfer(benchmark::State &state)
{
    sim::BandwidthChannel ch("bench", 12e9, 1000);
    SimTime now = 0;
    for (auto _ : state) {
        now = ch.transferAt(now, 64 * 1024);
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthChannelTransfer);

static void
BM_OlsRegressorSample(benchmark::State &state)
{
    reuse::OlsRegressor ols;
    Rng rng(5);
    for (auto _ : state)
        ols.addSample(double(rng.below(10000)), double(rng.below(5000)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlsRegressorSample);

BENCHMARK_MAIN();
