file(REMOVE_RECURSE
  "CMakeFiles/gmt_reuse.dir/classifier.cpp.o"
  "CMakeFiles/gmt_reuse.dir/classifier.cpp.o.d"
  "CMakeFiles/gmt_reuse.dir/olken_tree.cpp.o"
  "CMakeFiles/gmt_reuse.dir/olken_tree.cpp.o.d"
  "CMakeFiles/gmt_reuse.dir/ols_regressor.cpp.o"
  "CMakeFiles/gmt_reuse.dir/ols_regressor.cpp.o.d"
  "CMakeFiles/gmt_reuse.dir/overflow_heuristic.cpp.o"
  "CMakeFiles/gmt_reuse.dir/overflow_heuristic.cpp.o.d"
  "CMakeFiles/gmt_reuse.dir/sampler.cpp.o"
  "CMakeFiles/gmt_reuse.dir/sampler.cpp.o.d"
  "CMakeFiles/gmt_reuse.dir/vtd_tracker.cpp.o"
  "CMakeFiles/gmt_reuse.dir/vtd_tracker.cpp.o.d"
  "libgmt_reuse.a"
  "libgmt_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
