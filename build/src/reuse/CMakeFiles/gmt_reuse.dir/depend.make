# Empty dependencies file for gmt_reuse.
# This may be replaced when dependencies are built.
