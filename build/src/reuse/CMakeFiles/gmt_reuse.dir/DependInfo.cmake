
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reuse/classifier.cpp" "src/reuse/CMakeFiles/gmt_reuse.dir/classifier.cpp.o" "gcc" "src/reuse/CMakeFiles/gmt_reuse.dir/classifier.cpp.o.d"
  "/root/repo/src/reuse/olken_tree.cpp" "src/reuse/CMakeFiles/gmt_reuse.dir/olken_tree.cpp.o" "gcc" "src/reuse/CMakeFiles/gmt_reuse.dir/olken_tree.cpp.o.d"
  "/root/repo/src/reuse/ols_regressor.cpp" "src/reuse/CMakeFiles/gmt_reuse.dir/ols_regressor.cpp.o" "gcc" "src/reuse/CMakeFiles/gmt_reuse.dir/ols_regressor.cpp.o.d"
  "/root/repo/src/reuse/overflow_heuristic.cpp" "src/reuse/CMakeFiles/gmt_reuse.dir/overflow_heuristic.cpp.o" "gcc" "src/reuse/CMakeFiles/gmt_reuse.dir/overflow_heuristic.cpp.o.d"
  "/root/repo/src/reuse/sampler.cpp" "src/reuse/CMakeFiles/gmt_reuse.dir/sampler.cpp.o" "gcc" "src/reuse/CMakeFiles/gmt_reuse.dir/sampler.cpp.o.d"
  "/root/repo/src/reuse/vtd_tracker.cpp" "src/reuse/CMakeFiles/gmt_reuse.dir/vtd_tracker.cpp.o" "gcc" "src/reuse/CMakeFiles/gmt_reuse.dir/vtd_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gmt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
