file(REMOVE_RECURSE
  "libgmt_reuse.a"
)
