# Empty dependencies file for gmt_core.
# This may be replaced when dependencies are built.
