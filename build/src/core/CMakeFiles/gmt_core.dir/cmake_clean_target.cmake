file(REMOVE_RECURSE
  "libgmt_core.a"
)
