file(REMOVE_RECURSE
  "CMakeFiles/gmt_core.dir/config.cpp.o"
  "CMakeFiles/gmt_core.dir/config.cpp.o.d"
  "CMakeFiles/gmt_core.dir/gmt_runtime.cpp.o"
  "CMakeFiles/gmt_core.dir/gmt_runtime.cpp.o.d"
  "CMakeFiles/gmt_core.dir/runtime.cpp.o"
  "CMakeFiles/gmt_core.dir/runtime.cpp.o.d"
  "libgmt_core.a"
  "libgmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
