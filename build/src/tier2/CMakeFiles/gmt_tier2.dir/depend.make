# Empty dependencies file for gmt_tier2.
# This may be replaced when dependencies are built.
