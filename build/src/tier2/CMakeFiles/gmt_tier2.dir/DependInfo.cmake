
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tier2/directory.cpp" "src/tier2/CMakeFiles/gmt_tier2.dir/directory.cpp.o" "gcc" "src/tier2/CMakeFiles/gmt_tier2.dir/directory.cpp.o.d"
  "/root/repo/src/tier2/tier2_pool.cpp" "src/tier2/CMakeFiles/gmt_tier2.dir/tier2_pool.cpp.o" "gcc" "src/tier2/CMakeFiles/gmt_tier2.dir/tier2_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/replacement/CMakeFiles/gmt_replacement.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gmt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
