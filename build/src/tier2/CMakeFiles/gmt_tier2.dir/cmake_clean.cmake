file(REMOVE_RECURSE
  "CMakeFiles/gmt_tier2.dir/directory.cpp.o"
  "CMakeFiles/gmt_tier2.dir/directory.cpp.o.d"
  "CMakeFiles/gmt_tier2.dir/tier2_pool.cpp.o"
  "CMakeFiles/gmt_tier2.dir/tier2_pool.cpp.o.d"
  "libgmt_tier2.a"
  "libgmt_tier2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_tier2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
