file(REMOVE_RECURSE
  "libgmt_tier2.a"
)
