file(REMOVE_RECURSE
  "CMakeFiles/gmt_pcie.dir/dma_engine.cpp.o"
  "CMakeFiles/gmt_pcie.dir/dma_engine.cpp.o.d"
  "CMakeFiles/gmt_pcie.dir/transfer_manager.cpp.o"
  "CMakeFiles/gmt_pcie.dir/transfer_manager.cpp.o.d"
  "CMakeFiles/gmt_pcie.dir/zero_copy_engine.cpp.o"
  "CMakeFiles/gmt_pcie.dir/zero_copy_engine.cpp.o.d"
  "libgmt_pcie.a"
  "libgmt_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
