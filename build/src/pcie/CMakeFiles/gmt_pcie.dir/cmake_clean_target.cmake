file(REMOVE_RECURSE
  "libgmt_pcie.a"
)
