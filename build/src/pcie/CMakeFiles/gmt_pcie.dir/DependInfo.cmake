
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/dma_engine.cpp" "src/pcie/CMakeFiles/gmt_pcie.dir/dma_engine.cpp.o" "gcc" "src/pcie/CMakeFiles/gmt_pcie.dir/dma_engine.cpp.o.d"
  "/root/repo/src/pcie/transfer_manager.cpp" "src/pcie/CMakeFiles/gmt_pcie.dir/transfer_manager.cpp.o" "gcc" "src/pcie/CMakeFiles/gmt_pcie.dir/transfer_manager.cpp.o.d"
  "/root/repo/src/pcie/zero_copy_engine.cpp" "src/pcie/CMakeFiles/gmt_pcie.dir/zero_copy_engine.cpp.o" "gcc" "src/pcie/CMakeFiles/gmt_pcie.dir/zero_copy_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gmt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
