# Empty dependencies file for gmt_pcie.
# This may be replaced when dependencies are built.
