file(REMOVE_RECURSE
  "CMakeFiles/gmt_mem.dir/backing_store.cpp.o"
  "CMakeFiles/gmt_mem.dir/backing_store.cpp.o.d"
  "CMakeFiles/gmt_mem.dir/frame_pool.cpp.o"
  "CMakeFiles/gmt_mem.dir/frame_pool.cpp.o.d"
  "CMakeFiles/gmt_mem.dir/page_table.cpp.o"
  "CMakeFiles/gmt_mem.dir/page_table.cpp.o.d"
  "libgmt_mem.a"
  "libgmt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
