# Empty dependencies file for gmt_mem.
# This may be replaced when dependencies are built.
