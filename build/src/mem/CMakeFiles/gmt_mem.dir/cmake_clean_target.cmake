file(REMOVE_RECURSE
  "libgmt_mem.a"
)
