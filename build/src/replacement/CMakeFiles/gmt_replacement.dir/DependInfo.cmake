
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replacement/clock.cpp" "src/replacement/CMakeFiles/gmt_replacement.dir/clock.cpp.o" "gcc" "src/replacement/CMakeFiles/gmt_replacement.dir/clock.cpp.o.d"
  "/root/repo/src/replacement/factory.cpp" "src/replacement/CMakeFiles/gmt_replacement.dir/factory.cpp.o" "gcc" "src/replacement/CMakeFiles/gmt_replacement.dir/factory.cpp.o.d"
  "/root/repo/src/replacement/fifo.cpp" "src/replacement/CMakeFiles/gmt_replacement.dir/fifo.cpp.o" "gcc" "src/replacement/CMakeFiles/gmt_replacement.dir/fifo.cpp.o.d"
  "/root/repo/src/replacement/lru.cpp" "src/replacement/CMakeFiles/gmt_replacement.dir/lru.cpp.o" "gcc" "src/replacement/CMakeFiles/gmt_replacement.dir/lru.cpp.o.d"
  "/root/repo/src/replacement/random.cpp" "src/replacement/CMakeFiles/gmt_replacement.dir/random.cpp.o" "gcc" "src/replacement/CMakeFiles/gmt_replacement.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gmt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
