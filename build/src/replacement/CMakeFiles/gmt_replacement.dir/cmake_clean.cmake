file(REMOVE_RECURSE
  "CMakeFiles/gmt_replacement.dir/clock.cpp.o"
  "CMakeFiles/gmt_replacement.dir/clock.cpp.o.d"
  "CMakeFiles/gmt_replacement.dir/factory.cpp.o"
  "CMakeFiles/gmt_replacement.dir/factory.cpp.o.d"
  "CMakeFiles/gmt_replacement.dir/fifo.cpp.o"
  "CMakeFiles/gmt_replacement.dir/fifo.cpp.o.d"
  "CMakeFiles/gmt_replacement.dir/lru.cpp.o"
  "CMakeFiles/gmt_replacement.dir/lru.cpp.o.d"
  "CMakeFiles/gmt_replacement.dir/random.cpp.o"
  "CMakeFiles/gmt_replacement.dir/random.cpp.o.d"
  "libgmt_replacement.a"
  "libgmt_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
