file(REMOVE_RECURSE
  "libgmt_replacement.a"
)
