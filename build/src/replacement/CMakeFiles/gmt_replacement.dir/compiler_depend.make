# Empty compiler generated dependencies file for gmt_replacement.
# This may be replaced when dependencies are built.
