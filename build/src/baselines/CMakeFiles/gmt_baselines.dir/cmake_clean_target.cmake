file(REMOVE_RECURSE
  "libgmt_baselines.a"
)
