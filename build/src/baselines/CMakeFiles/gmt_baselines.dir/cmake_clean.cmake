file(REMOVE_RECURSE
  "CMakeFiles/gmt_baselines.dir/bam_runtime.cpp.o"
  "CMakeFiles/gmt_baselines.dir/bam_runtime.cpp.o.d"
  "CMakeFiles/gmt_baselines.dir/hmm_runtime.cpp.o"
  "CMakeFiles/gmt_baselines.dir/hmm_runtime.cpp.o.d"
  "libgmt_baselines.a"
  "libgmt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
