file(REMOVE_RECURSE
  "libgmt_workloads.a"
)
