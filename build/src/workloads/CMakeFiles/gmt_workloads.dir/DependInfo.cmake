
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backprop.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/backprop.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/backprop.cpp.o.d"
  "/root/repo/src/workloads/bfs.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/bfs.cpp.o.d"
  "/root/repo/src/workloads/factory.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/factory.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/factory.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/kron_graph.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/kron_graph.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/kron_graph.cpp.o.d"
  "/root/repo/src/workloads/lavamd.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/lavamd.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/lavamd.cpp.o.d"
  "/root/repo/src/workloads/multi_vector_add.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/multi_vector_add.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/multi_vector_add.cpp.o.d"
  "/root/repo/src/workloads/pagerank.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/pagerank.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/pagerank.cpp.o.d"
  "/root/repo/src/workloads/pathfinder.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/pathfinder.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/pathfinder.cpp.o.d"
  "/root/repo/src/workloads/sequence_stream.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/sequence_stream.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/sequence_stream.cpp.o.d"
  "/root/repo/src/workloads/srad.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/srad.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/srad.cpp.o.d"
  "/root/repo/src/workloads/sssp.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/sssp.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/sssp.cpp.o.d"
  "/root/repo/src/workloads/trace_file.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/trace_file.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/trace_file.cpp.o.d"
  "/root/repo/src/workloads/zipf_stream.cpp" "src/workloads/CMakeFiles/gmt_workloads.dir/zipf_stream.cpp.o" "gcc" "src/workloads/CMakeFiles/gmt_workloads.dir/zipf_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/gmt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gmt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/gmt_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/gmt_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/gmt_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/tier2/CMakeFiles/gmt_tier2.dir/DependInfo.cmake"
  "/root/repo/build/src/replacement/CMakeFiles/gmt_replacement.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gmt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
