file(REMOVE_RECURSE
  "CMakeFiles/gmt_workloads.dir/backprop.cpp.o"
  "CMakeFiles/gmt_workloads.dir/backprop.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/bfs.cpp.o"
  "CMakeFiles/gmt_workloads.dir/bfs.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/factory.cpp.o"
  "CMakeFiles/gmt_workloads.dir/factory.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/gmt_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/kron_graph.cpp.o"
  "CMakeFiles/gmt_workloads.dir/kron_graph.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/lavamd.cpp.o"
  "CMakeFiles/gmt_workloads.dir/lavamd.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/multi_vector_add.cpp.o"
  "CMakeFiles/gmt_workloads.dir/multi_vector_add.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/pagerank.cpp.o"
  "CMakeFiles/gmt_workloads.dir/pagerank.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/pathfinder.cpp.o"
  "CMakeFiles/gmt_workloads.dir/pathfinder.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/sequence_stream.cpp.o"
  "CMakeFiles/gmt_workloads.dir/sequence_stream.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/srad.cpp.o"
  "CMakeFiles/gmt_workloads.dir/srad.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/sssp.cpp.o"
  "CMakeFiles/gmt_workloads.dir/sssp.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/trace_file.cpp.o"
  "CMakeFiles/gmt_workloads.dir/trace_file.cpp.o.d"
  "CMakeFiles/gmt_workloads.dir/zipf_stream.cpp.o"
  "CMakeFiles/gmt_workloads.dir/zipf_stream.cpp.o.d"
  "libgmt_workloads.a"
  "libgmt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
