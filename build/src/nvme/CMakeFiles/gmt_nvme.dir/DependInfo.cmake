
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvme/nvme_device.cpp" "src/nvme/CMakeFiles/gmt_nvme.dir/nvme_device.cpp.o" "gcc" "src/nvme/CMakeFiles/gmt_nvme.dir/nvme_device.cpp.o.d"
  "/root/repo/src/nvme/queue_pair.cpp" "src/nvme/CMakeFiles/gmt_nvme.dir/queue_pair.cpp.o" "gcc" "src/nvme/CMakeFiles/gmt_nvme.dir/queue_pair.cpp.o.d"
  "/root/repo/src/nvme/ssd_model.cpp" "src/nvme/CMakeFiles/gmt_nvme.dir/ssd_model.cpp.o" "gcc" "src/nvme/CMakeFiles/gmt_nvme.dir/ssd_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gmt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
