file(REMOVE_RECURSE
  "libgmt_nvme.a"
)
