# Empty compiler generated dependencies file for gmt_nvme.
# This may be replaced when dependencies are built.
