file(REMOVE_RECURSE
  "CMakeFiles/gmt_nvme.dir/nvme_device.cpp.o"
  "CMakeFiles/gmt_nvme.dir/nvme_device.cpp.o.d"
  "CMakeFiles/gmt_nvme.dir/queue_pair.cpp.o"
  "CMakeFiles/gmt_nvme.dir/queue_pair.cpp.o.d"
  "CMakeFiles/gmt_nvme.dir/ssd_model.cpp.o"
  "CMakeFiles/gmt_nvme.dir/ssd_model.cpp.o.d"
  "libgmt_nvme.a"
  "libgmt_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
