# Empty compiler generated dependencies file for gmt_util.
# This may be replaced when dependencies are built.
