file(REMOVE_RECURSE
  "CMakeFiles/gmt_util.dir/logging.cpp.o"
  "CMakeFiles/gmt_util.dir/logging.cpp.o.d"
  "CMakeFiles/gmt_util.dir/rng.cpp.o"
  "CMakeFiles/gmt_util.dir/rng.cpp.o.d"
  "libgmt_util.a"
  "libgmt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
