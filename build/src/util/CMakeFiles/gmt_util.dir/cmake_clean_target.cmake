file(REMOVE_RECURSE
  "libgmt_util.a"
)
