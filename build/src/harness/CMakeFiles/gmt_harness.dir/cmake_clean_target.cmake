file(REMOVE_RECURSE
  "libgmt_harness.a"
)
