# Empty dependencies file for gmt_harness.
# This may be replaced when dependencies are built.
