file(REMOVE_RECURSE
  "CMakeFiles/gmt_harness.dir/experiment.cpp.o"
  "CMakeFiles/gmt_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/gmt_harness.dir/oracle.cpp.o"
  "CMakeFiles/gmt_harness.dir/oracle.cpp.o.d"
  "CMakeFiles/gmt_harness.dir/trace_analysis.cpp.o"
  "CMakeFiles/gmt_harness.dir/trace_analysis.cpp.o.d"
  "libgmt_harness.a"
  "libgmt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
