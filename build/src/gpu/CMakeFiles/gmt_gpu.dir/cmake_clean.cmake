file(REMOVE_RECURSE
  "CMakeFiles/gmt_gpu.dir/access_stream.cpp.o"
  "CMakeFiles/gmt_gpu.dir/access_stream.cpp.o.d"
  "CMakeFiles/gmt_gpu.dir/coalescer.cpp.o"
  "CMakeFiles/gmt_gpu.dir/coalescer.cpp.o.d"
  "CMakeFiles/gmt_gpu.dir/gpu_engine.cpp.o"
  "CMakeFiles/gmt_gpu.dir/gpu_engine.cpp.o.d"
  "libgmt_gpu.a"
  "libgmt_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
