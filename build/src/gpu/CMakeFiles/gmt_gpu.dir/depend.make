# Empty dependencies file for gmt_gpu.
# This may be replaced when dependencies are built.
