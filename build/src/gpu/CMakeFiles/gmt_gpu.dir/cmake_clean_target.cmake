file(REMOVE_RECURSE
  "libgmt_gpu.a"
)
