# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("sim")
subdirs("mem")
subdirs("replacement")
subdirs("reuse")
subdirs("pcie")
subdirs("nvme")
subdirs("cache")
subdirs("tier2")
subdirs("core")
subdirs("baselines")
subdirs("gpu")
subdirs("workloads")
subdirs("harness")
