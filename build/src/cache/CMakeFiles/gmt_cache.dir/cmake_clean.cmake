file(REMOVE_RECURSE
  "CMakeFiles/gmt_cache.dir/tier1_cache.cpp.o"
  "CMakeFiles/gmt_cache.dir/tier1_cache.cpp.o.d"
  "libgmt_cache.a"
  "libgmt_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
