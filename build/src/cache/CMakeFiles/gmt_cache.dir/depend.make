# Empty dependencies file for gmt_cache.
# This may be replaced when dependencies are built.
