file(REMOVE_RECURSE
  "libgmt_cache.a"
)
