file(REMOVE_RECURSE
  "CMakeFiles/gmt_sim.dir/channel.cpp.o"
  "CMakeFiles/gmt_sim.dir/channel.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/event_queue.cpp.o"
  "CMakeFiles/gmt_sim.dir/event_queue.cpp.o.d"
  "libgmt_sim.a"
  "libgmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
