file(REMOVE_RECURSE
  "libgmt_stats.a"
)
