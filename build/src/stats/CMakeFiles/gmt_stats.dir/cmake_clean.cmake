file(REMOVE_RECURSE
  "CMakeFiles/gmt_stats.dir/distribution.cpp.o"
  "CMakeFiles/gmt_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/gmt_stats.dir/table.cpp.o"
  "CMakeFiles/gmt_stats.dir/table.cpp.o.d"
  "libgmt_stats.a"
  "libgmt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
