# Empty dependencies file for gmt_stats.
# This may be replaced when dependencies are built.
