# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/replacement_test[1]_include.cmake")
include("/root/repo/build/tests/reuse_olken_test[1]_include.cmake")
include("/root/repo/build/tests/reuse_model_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/tier2_test[1]_include.cmake")
include("/root/repo/build/tests/core_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/hmm_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_engine_test[1]_include.cmake")
include("/root/repo/build/tests/coalescer_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/trace_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/trace_file_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
