file(REMOVE_RECURSE
  "CMakeFiles/tier2_test.dir/tier2_test.cpp.o"
  "CMakeFiles/tier2_test.dir/tier2_test.cpp.o.d"
  "tier2_test"
  "tier2_test.pdb"
  "tier2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
