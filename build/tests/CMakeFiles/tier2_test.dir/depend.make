# Empty dependencies file for tier2_test.
# This may be replaced when dependencies are built.
