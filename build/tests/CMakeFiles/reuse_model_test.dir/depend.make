# Empty dependencies file for reuse_model_test.
# This may be replaced when dependencies are built.
