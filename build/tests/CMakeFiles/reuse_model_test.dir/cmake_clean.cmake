file(REMOVE_RECURSE
  "CMakeFiles/reuse_model_test.dir/reuse_model_test.cpp.o"
  "CMakeFiles/reuse_model_test.dir/reuse_model_test.cpp.o.d"
  "reuse_model_test"
  "reuse_model_test.pdb"
  "reuse_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
