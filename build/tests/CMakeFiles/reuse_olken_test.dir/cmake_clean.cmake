file(REMOVE_RECURSE
  "CMakeFiles/reuse_olken_test.dir/reuse_olken_test.cpp.o"
  "CMakeFiles/reuse_olken_test.dir/reuse_olken_test.cpp.o.d"
  "reuse_olken_test"
  "reuse_olken_test.pdb"
  "reuse_olken_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_olken_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
