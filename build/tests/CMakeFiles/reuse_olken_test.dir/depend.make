# Empty dependencies file for reuse_olken_test.
# This may be replaced when dependencies are built.
