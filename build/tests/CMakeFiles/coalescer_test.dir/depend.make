# Empty dependencies file for coalescer_test.
# This may be replaced when dependencies are built.
