file(REMOVE_RECURSE
  "CMakeFiles/coalescer_test.dir/coalescer_test.cpp.o"
  "CMakeFiles/coalescer_test.dir/coalescer_test.cpp.o.d"
  "coalescer_test"
  "coalescer_test.pdb"
  "coalescer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
