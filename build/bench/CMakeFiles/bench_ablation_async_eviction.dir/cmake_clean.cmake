file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_async_eviction.dir/bench_ablation_async_eviction.cpp.o"
  "CMakeFiles/bench_ablation_async_eviction.dir/bench_ablation_async_eviction.cpp.o.d"
  "bench_ablation_async_eviction"
  "bench_ablation_async_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
