file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tier2_overheads.dir/bench_fig10_tier2_overheads.cpp.o"
  "CMakeFiles/bench_fig10_tier2_overheads.dir/bench_fig10_tier2_overheads.cpp.o.d"
  "bench_fig10_tier2_overheads"
  "bench_fig10_tier2_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tier2_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
