# Empty compiler generated dependencies file for bench_fig10_tier2_overheads.
# This may be replaced when dependencies are built.
