# Empty compiler generated dependencies file for bench_fig13_large_tier1.
# This may be replaced when dependencies are built.
