file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_large_tier1.dir/bench_fig13_large_tier1.cpp.o"
  "CMakeFiles/bench_fig13_large_tier1.dir/bench_fig13_large_tier1.cpp.o.d"
  "bench_fig13_large_tier1"
  "bench_fig13_large_tier1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_large_tier1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
