# Empty compiler generated dependencies file for bench_fig12_capacity_ratio.
# This may be replaced when dependencies are built.
