file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_oversubscription.dir/bench_fig11_oversubscription.cpp.o"
  "CMakeFiles/bench_fig11_oversubscription.dir/bench_fig11_oversubscription.cpp.o.d"
  "bench_fig11_oversubscription"
  "bench_fig11_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
