file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_transfer.dir/bench_fig6_transfer.cpp.o"
  "CMakeFiles/bench_fig6_transfer.dir/bench_fig6_transfer.cpp.o.d"
  "bench_fig6_transfer"
  "bench_fig6_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
