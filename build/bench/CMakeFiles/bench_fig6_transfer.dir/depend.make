# Empty dependencies file for bench_fig6_transfer.
# This may be replaced when dependencies are built.
