file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rrd_characteristics.dir/bench_fig4_rrd_characteristics.cpp.o"
  "CMakeFiles/bench_fig4_rrd_characteristics.dir/bench_fig4_rrd_characteristics.cpp.o.d"
  "bench_fig4_rrd_characteristics"
  "bench_fig4_rrd_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rrd_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
