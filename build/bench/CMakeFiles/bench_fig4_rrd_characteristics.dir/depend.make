# Empty dependencies file for bench_fig4_rrd_characteristics.
# This may be replaced when dependencies are built.
