# Empty dependencies file for bench_extension_ssd_scaling.
# This may be replaced when dependencies are built.
