file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hmm.dir/bench_fig14_hmm.cpp.o"
  "CMakeFiles/bench_fig14_hmm.dir/bench_fig14_hmm.cpp.o.d"
  "bench_fig14_hmm"
  "bench_fig14_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
