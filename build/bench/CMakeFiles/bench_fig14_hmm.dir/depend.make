# Empty dependencies file for bench_fig14_hmm.
# This may be replaced when dependencies are built.
