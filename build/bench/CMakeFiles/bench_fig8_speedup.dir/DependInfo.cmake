
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_speedup.cpp" "bench/CMakeFiles/bench_fig8_speedup.dir/bench_fig8_speedup.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_speedup.dir/bench_fig8_speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gmt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gmt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gmt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/gmt_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gmt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/gmt_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/gmt_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/tier2/CMakeFiles/gmt_tier2.dir/DependInfo.cmake"
  "/root/repo/build/src/replacement/CMakeFiles/gmt_replacement.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gmt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
