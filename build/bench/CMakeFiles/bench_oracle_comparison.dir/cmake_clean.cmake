file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle_comparison.dir/bench_oracle_comparison.cpp.o"
  "CMakeFiles/bench_oracle_comparison.dir/bench_oracle_comparison.cpp.o.d"
  "bench_oracle_comparison"
  "bench_oracle_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
