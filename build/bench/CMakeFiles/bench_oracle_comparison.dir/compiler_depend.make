# Empty compiler generated dependencies file for bench_oracle_comparison.
# This may be replaced when dependencies are built.
